// Device-level tests: Table I derived quantities, Fig. 3 read-out circuit,
// switching transients (Fig. 4 behaviour) and the stochastic delay model.
#include <gtest/gtest.h>

#include "core/characterization.hpp"
#include "core/gshe_switch.hpp"
#include "core/stochastic.hpp"

namespace gshe::core {
namespace {

// ---- Table I derived parameters -----------------------------------------------

TEST(DeviceParams, BetaIsSix) {
    const GsheSwitchParams p;
    EXPECT_NEAR(p.beta(), 6.0, 1e-9);
}

TEST(DeviceParams, HeavyMetalResistanceAboutOneKiloOhm) {
    const GsheSwitchParams p;
    EXPECT_NEAR(p.hm_resistance(), 1000.0, 1.0);
}

TEST(DeviceParams, ParallelConductance420uS) {
    const GsheSwitchParams p;
    EXPECT_NEAR(p.gp() * 1e6, 420.0, 0.5);
}

TEST(DeviceParams, AntiParallelConductance155uS) {
    const GsheSwitchParams p;
    EXPECT_NEAR(p.gap() * 1e6, 155.6, 0.5);
    EXPECT_NEAR(p.gp() / p.gap(), 1.0 + p.tmr, 1e-12);
}

TEST(DeviceParams, LayoutAreaMatchesFig3) {
    const GsheSwitchParams p;
    EXPECT_NEAR(p.area() * 1e12, 0.0016, 1e-6);  // um^2
}

// ---- Fig. 3 read-out equivalent circuit ----------------------------------------

TEST(Readout, OutputVoltageFormula) {
    const GsheSwitchParams p;
    const ReadoutPoint pt = readout_point(p, 20e-6);
    EXPECT_NEAR(pt.v_out, 20e-6 * p.hm_resistance() / p.beta(), 1e-12);
    EXPECT_NEAR(pt.v_out * 1e3, 3.333, 0.01);  // mV
}

TEST(Readout, SupplyVoltageFormula) {
    const GsheSwitchParams p;
    const ReadoutPoint pt = readout_point(p, 20e-6);
    const double expected = (20e-6 / p.beta()) *
                            (1.0 + p.hm_resistance() * (p.gp() + p.gap())) /
                            (p.gp() - p.gap());
    EXPECT_NEAR(pt.v_sup, expected, 1e-12);
}

TEST(Readout, PowerMatchesPaperValue) {
    // Paper: 0.2125 uW. Our equivalent circuit with r = 1000 Ohm exactly
    // gives 0.2095 uW; accept within 3%.
    const GsheSwitchParams p;
    const ReadoutPoint pt = readout_point(p, 20e-6);
    EXPECT_NEAR(pt.power * 1e6, 0.2125, 0.2125 * 0.03);
}

TEST(Readout, EnergyMatchesPaperValue) {
    // E = P * 1.55 ns ~ 0.33 fJ.
    const GsheSwitchParams p;
    const ReadoutPoint pt = readout_point(p, 20e-6);
    EXPECT_NEAR(pt.power * kNominalDelay * 1e15, 0.33, 0.33 * 0.05);
}

TEST(Readout, PowerScalesQuadratically) {
    const GsheSwitchParams p;
    const double p1 = readout_point(p, 20e-6).power;
    const double p2 = readout_point(p, 40e-6).power;
    EXPECT_NEAR(p2 / p1, 4.0, 1e-9);
}

TEST(Readout, RejectsNonPositiveCurrent) {
    EXPECT_THROW(readout_point(GsheSwitchParams{}, 0.0), std::invalid_argument);
    EXPECT_THROW(readout_point(GsheSwitchParams{}, -1e-6), std::invalid_argument);
}

// ---- switching transients -------------------------------------------------------

TEST(Switching, DeterministicAtTableICurrent) {
    const GsheSwitch dev;
    Rng rng(1);
    int switched = 0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
        Rng trial = rng.fork();
        if (dev.simulate_switching(20e-6, true, trial).switched) ++switched;
    }
    EXPECT_EQ(switched, trials);  // Table I: 20 uA guarantees switching
}

TEST(Switching, MeanDelayNanosecondScale) {
    const GsheSwitch dev;
    const DelayDistribution d = characterize_delay(dev, 20e-6, 60, 4242);
    EXPECT_EQ(d.switched, d.trials);
    // Paper reports 1.55 ns; our sLLGS reproduction lands at ~2.3 ns
    // (EXPERIMENTS.md discusses the gap). Assert the nanosecond scale and
    // a meaningful stochastic spread.
    EXPECT_GT(d.stats.mean(), 1.0e-9);
    EXPECT_LT(d.stats.mean(), 4.0e-9);
    EXPECT_GT(d.stats.stddev(), 0.1e-9);
}

TEST(Switching, DelayShrinksWithCurrent) {
    // The headline property of Fig. 4: mean and spread diminish as IS grows.
    const GsheSwitch dev;
    const DelayDistribution d20 = characterize_delay(dev, 20e-6, 50, 7);
    const DelayDistribution d60 = characterize_delay(dev, 60e-6, 50, 7);
    const DelayDistribution d100 = characterize_delay(dev, 100e-6, 50, 7);
    EXPECT_GT(d20.stats.mean(), d60.stats.mean());
    EXPECT_GT(d60.stats.mean(), d100.stats.mean());
    EXPECT_GT(d20.stats.stddev(), d100.stats.stddev());
}

TEST(Switching, BothPolaritiesWork) {
    const GsheSwitch dev;
    Rng r1(5), r2(5);
    EXPECT_TRUE(dev.simulate_switching(60e-6, true, r1).switched);
    EXPECT_TRUE(dev.simulate_switching(60e-6, false, r2).switched);
}

TEST(Switching, ShortPulseFailsToSwitch) {
    const GsheSwitch dev;
    Rng rng(3);
    const SwitchingResult res =
        dev.simulate_switching(20e-6, true, rng, /*max_time=*/0.2e-9);
    EXPECT_FALSE(res.switched);
}

TEST(Switching, RejectsNonPositiveCurrent) {
    const GsheSwitch dev;
    Rng rng(1);
    EXPECT_THROW(dev.simulate_switching(0.0, true, rng), std::invalid_argument);
}

TEST(Switching, ResetStateIsAntiParallel) {
    const GsheSwitch dev;
    auto sys = dev.make_system();
    EXPECT_LT(dot(sys.m(0), sys.m(1)), -0.99);
}

// ---- characterization -----------------------------------------------------------

TEST(Characterization, DeviceMetricsRow) {
    const GsheSwitch dev;
    const DeviceMetrics m = characterize_device(dev, 20e-6, 60, 99);
    EXPECT_EQ(m.functions, 16);
    EXPECT_NEAR(m.power * 1e6, 0.21, 0.02);
    EXPECT_GT(m.delay, 1e-9);
    EXPECT_NEAR(m.energy, m.power * m.delay, 1e-20);
    EXPECT_NEAR(m.area * 1e12, 0.0016, 1e-6);
}

TEST(Characterization, HistogramCoversSamples) {
    const GsheSwitch dev;
    const DelayDistribution d = characterize_delay(dev, 60e-6, 80, 11);
    std::uint64_t binned = d.histogram.underflow() + d.histogram.overflow();
    for (std::size_t i = 0; i < d.histogram.bins(); ++i)
        binned += d.histogram.count(i);
    EXPECT_EQ(binned, d.switched);
}

// ---- stochastic delay model -------------------------------------------------------

TEST(StochasticModel, FitRecoversParameters) {
    Rng rng(21);
    std::vector<double> samples;
    const double mu = std::log(2e-9), sigma = 0.3;
    for (int i = 0; i < 20000; ++i)
        samples.push_back(std::exp(rng.gaussian(mu, sigma)));
    const auto model = SwitchingDelayModel::fit(samples);
    EXPECT_NEAR(model.mu(), mu, 0.01);
    EXPECT_NEAR(model.sigma(), sigma, 0.01);
}

TEST(StochasticModel, AccuracyIsMonotoneCdf) {
    const SwitchingDelayModel m(std::log(2e-9), 0.4);
    EXPECT_NEAR(m.accuracy_for_pulse(m.median_delay()), 0.5, 1e-9);
    EXPECT_LT(m.accuracy_for_pulse(1e-9), m.accuracy_for_pulse(3e-9));
    EXPECT_NEAR(m.accuracy_for_pulse(100e-9), 1.0, 1e-6);
    EXPECT_NEAR(m.accuracy_for_pulse(0.0), 0.0, 1e-12);
}

TEST(StochasticModel, PulseForAccuracyInvertsCdf) {
    const SwitchingDelayModel m(std::log(2e-9), 0.4);
    for (double acc : {0.6, 0.9, 0.95, 0.99}) {
        const double pulse = m.pulse_for_accuracy(acc);
        EXPECT_NEAR(m.accuracy_for_pulse(pulse), acc, 1e-6);
    }
}

TEST(StochasticModel, FitRejectsBadInput) {
    EXPECT_THROW(SwitchingDelayModel::fit({1e-9}), std::invalid_argument);
    EXPECT_THROW(SwitchingDelayModel::fit({1e-9, -1e-9}), std::invalid_argument);
    EXPECT_THROW(SwitchingDelayModel(0.0, -1.0), std::invalid_argument);
}

TEST(StochasticModel, EndToEndCalibrationFromDevice) {
    // Fit the lognormal on simulated delays, derive the 95%-accuracy pulse,
    // and confirm by Monte Carlo that roughly 95% of transients finish.
    const GsheSwitch dev;
    Rng rng(31);
    const auto samples = dev.delay_samples(20e-6, 120, rng);
    std::vector<double> delays;
    for (const auto& s : samples)
        if (s) delays.push_back(*s);
    ASSERT_GT(delays.size(), 100u);
    const auto model = SwitchingDelayModel::fit(delays);
    const double pulse = model.pulse_for_accuracy(0.95);

    int completed = 0;
    const int trials = 120;
    for (int t = 0; t < trials; ++t) {
        Rng trial = rng.fork();
        if (dev.simulate_switching(20e-6, true, trial, pulse).switched)
            ++completed;
    }
    EXPECT_NEAR(static_cast<double>(completed) / trials, 0.95, 0.08);
}

}  // namespace
}  // namespace gshe::core
