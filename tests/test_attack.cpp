// Tests for the oracle-guided attacks: exact/stochastic oracles, the
// Subramanyan SAT attack, Double DIP, AppSAT, SAT equivalence checking, and
// the Sec. V-B stochastic-defense behaviour.
#include <gtest/gtest.h>

#include <cstdlib>

#include "attack/appsat.hpp"
#include "attack/double_dip.hpp"
#include "attack/equivalence.hpp"
#include "attack/oracle.hpp"
#include "attack/sat_attack.hpp"
#include "camo/cell_library.hpp"
#include "camo/protect.hpp"
#include "netlist/generator.hpp"

namespace gshe::attack {
namespace {

using camo::apply_camouflage;
using camo::Protection;
using camo::select_gates;
using netlist::Netlist;

Netlist small_circuit(std::uint64_t seed = 5) {
    netlist::RandomSpec spec;
    spec.n_inputs = 18;
    spec.n_outputs = 12;
    spec.n_gates = 160;
    spec.seed = seed;
    return netlist::random_circuit(spec);
}

Protection protect(const Netlist& nl, const camo::CellLibrary& lib,
                   double fraction = 0.12, std::uint64_t seed = 9) {
    return apply_camouflage(nl, select_gates(nl, fraction, seed), lib, seed);
}

// ---- oracles --------------------------------------------------------------------

TEST(Oracle, ExactOracleMatchesSimulation) {
    const Netlist nl = small_circuit();
    ExactOracle oracle(nl);
    netlist::Simulator sim(nl);
    Rng rng(3);
    std::vector<std::uint64_t> pi(nl.inputs().size());
    for (auto& w : pi) w = rng();
    EXPECT_EQ(oracle.query(pi), sim.run(pi));
    EXPECT_EQ(oracle.patterns_queried(), 64u);
}

TEST(Oracle, SingleQueryCountsOnePattern) {
    const Netlist nl = small_circuit();
    ExactOracle oracle(nl);
    (void)oracle.query_single(std::vector<bool>(nl.inputs().size(), false));
    EXPECT_EQ(oracle.patterns_queried(), 1u);
}

TEST(Oracle, StochasticAtFullAccuracyIsExact) {
    const Netlist nl = small_circuit();
    const Protection prot = protect(nl, camo::gshe16());
    StochasticOracle noisy(prot.netlist, 1.0, 11);
    ExactOracle exact(prot.netlist);
    Rng rng(5);
    std::vector<std::uint64_t> pi(nl.inputs().size());
    for (auto& w : pi) w = rng();
    EXPECT_EQ(noisy.query(pi), exact.query(pi));
}

TEST(Oracle, StochasticErrorRateIsCalibrated) {
    const Netlist nl = small_circuit();
    const Protection prot = protect(nl, camo::gshe16(), 0.05);
    // One camouflaged device feeding an output would give a direct rate;
    // measure the aggregate output disturbance instead and require it to be
    // strictly positive and increasing as accuracy drops.
    auto disturbance = [&](double accuracy) {
        StochasticOracle noisy(prot.netlist, accuracy, 13);
        ExactOracle exact(prot.netlist);
        Rng rng(7);
        std::uint64_t diff_bits = 0;
        for (int w = 0; w < 64; ++w) {
            std::vector<std::uint64_t> pi(nl.inputs().size());
            for (auto& word : pi) word = rng();
            const auto a = noisy.query(pi);
            const auto b = exact.query(pi);
            for (std::size_t o = 0; o < a.size(); ++o)
                diff_bits += static_cast<std::uint64_t>(
                    __builtin_popcountll(a[o] ^ b[o]));
        }
        return static_cast<double>(diff_bits);
    };
    const double d99 = disturbance(0.99);
    const double d90 = disturbance(0.90);
    EXPECT_GT(d99, 0.0);
    EXPECT_GT(d90, d99);
}

TEST(Oracle, StochasticValidatesArguments) {
    const Netlist nl = small_circuit();
    const Protection prot = protect(nl, camo::gshe16());
    EXPECT_THROW(StochasticOracle(prot.netlist, 0.0, 1), std::invalid_argument);
    EXPECT_THROW(StochasticOracle(prot.netlist, 1.5, 1), std::invalid_argument);
    EXPECT_THROW(StochasticOracle(prot.netlist, std::vector<double>{0.9}, 1),
                 std::invalid_argument);
}

// ---- SAT attack across all libraries (parameterized) ------------------------------

class AttackEveryLibrary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AttackEveryLibrary, RecoversExactFunctionality) {
    const camo::CellLibrary& lib = camo::table4_libraries()[GetParam()];
    const Netlist nl = small_circuit(GetParam() + 100);
    const Protection prot = protect(nl, lib);
    ExactOracle oracle(prot.netlist);
    AttackOptions opt;
    opt.timeout_seconds = 60.0;
    const AttackResult res = sat_attack(prot.netlist, oracle, opt);
    ASSERT_EQ(res.status, AttackResult::Status::Success) << lib.name;
    EXPECT_TRUE(res.key_exact) << lib.name;
    // Exact SAT equivalence as the final word.
    const EquivResult eq = check_key_equivalence(prot.netlist, res.key, 60.0);
    EXPECT_EQ(eq.status, EquivStatus::Equivalent) << lib.name;
}

INSTANTIATE_TEST_SUITE_P(AllLibraries, AttackEveryLibrary,
                         ::testing::Range<std::size_t>(0, 7),
                         [](const auto& info) {
                             return camo::table4_libraries()[info.param].name;
                         });

TEST(SatAttack, TrivialWithoutCamouflage) {
    const Netlist nl = small_circuit();
    ExactOracle oracle(nl);
    const AttackResult res = sat_attack(nl, oracle);
    EXPECT_EQ(res.status, AttackResult::Status::Success);
    EXPECT_EQ(res.iterations, 0u);
    EXPECT_TRUE(res.key.bits.empty());
}

TEST(SatAttack, TimeoutReported) {
    const Netlist nl = netlist::array_multiplier(10);
    const Protection prot = protect(nl, camo::gshe16(), 0.25, 3);
    ExactOracle oracle(prot.netlist);
    AttackOptions opt;
    opt.timeout_seconds = 0.05;  // far too little for a multiplier
    const AttackResult res = sat_attack(prot.netlist, oracle, opt);
    EXPECT_EQ(res.status, AttackResult::Status::TimedOut);
    EXPECT_LE(res.seconds, 5.0);  // bounded overshoot
}

TEST(SatAttack, MoreFunctionsNeedMoreDips) {
    // The Table IV mechanism in miniature: the 16-function primitive forces
    // at least as many (usually more) DIPs than the 2-function one on the
    // same selection.
    const Netlist nl = small_circuit(77);
    const auto sel = select_gates(nl, 0.12, 21);
    ExactOracle o2(apply_camouflage(nl, sel, camo::alasad17c_zhang16(), 21).netlist);
    ExactOracle o16(apply_camouflage(nl, sel, camo::gshe16(), 21).netlist);
    const Protection p2 = apply_camouflage(nl, sel, camo::alasad17c_zhang16(), 21);
    const Protection p16 = apply_camouflage(nl, sel, camo::gshe16(), 21);
    const AttackResult r2 = sat_attack(p2.netlist, o2);
    const AttackResult r16 = sat_attack(p16.netlist, o16);
    ASSERT_EQ(r2.status, AttackResult::Status::Success);
    ASSERT_EQ(r16.status, AttackResult::Status::Success);
    EXPECT_GT(r16.iterations, r2.iterations);
    EXPECT_GT(r16.solver_stats.conflicts, 0u);
}

TEST(SatAttack, KeyErrorRateHelper) {
    const Netlist nl = small_circuit(31);
    const Protection prot = protect(nl, camo::gshe16());
    EXPECT_DOUBLE_EQ(key_error_rate(prot.netlist, prot.true_key, 1024, 1), 0.0);
    camo::Key wrong = prot.true_key;
    for (std::size_t i = 0; i < wrong.bits.size(); ++i)
        wrong.bits[i] = !wrong.bits[i];
    EXPECT_GT(key_error_rate(prot.netlist, wrong, 1024, 1), 0.0);
}

TEST(SatAttack, StatusNames) {
    EXPECT_EQ(AttackResult::status_name(AttackResult::Status::Success), "success");
    EXPECT_EQ(AttackResult::status_name(AttackResult::Status::TimedOut), "t-o");
    EXPECT_EQ(AttackResult::status_name(AttackResult::Status::Inconsistent),
              "inconsistent");
}

// ---- Double DIP ------------------------------------------------------------------

TEST(DoubleDip, RecoversExactFunctionality) {
    const Netlist nl = small_circuit(41);
    const Protection prot = protect(nl, camo::gshe16());
    ExactOracle oracle(prot.netlist);
    AttackOptions opt;
    opt.timeout_seconds = 120.0;
    const AttackResult res = double_dip_attack(prot.netlist, oracle, opt);
    ASSERT_EQ(res.status, AttackResult::Status::Success);
    EXPECT_TRUE(res.key_exact);
}

TEST(DoubleDip, WorksOnTinyKeySpace) {
    // One camouflaged cell: phase 1 is immediately UNSAT; phase 2 finishes.
    Netlist nl("tiny");
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto g = nl.add_gate(core::Bool2::NAND(), a, b);
    nl.add_output(g, "y");
    nl.camouflage(g, camo::gshe16().functions, "gshe16");
    ExactOracle oracle(nl);
    const AttackResult res = double_dip_attack(nl, oracle);
    ASSERT_EQ(res.status, AttackResult::Status::Success);
    EXPECT_TRUE(res.key_exact);
}

TEST(DoubleDip, TimeoutReported) {
    const Netlist nl = netlist::array_multiplier(10);
    const Protection prot = protect(nl, camo::gshe16(), 0.25, 3);
    ExactOracle oracle(prot.netlist);
    AttackOptions opt;
    opt.timeout_seconds = 0.05;
    const AttackResult res = double_dip_attack(prot.netlist, oracle, opt);
    EXPECT_EQ(res.status, AttackResult::Status::TimedOut);
}

// ---- AppSAT ----------------------------------------------------------------------

TEST(AppSat, ExactOnDeterministicOracle) {
    const Netlist nl = small_circuit(51);
    const Protection prot = protect(nl, camo::gshe16());
    ExactOracle oracle(prot.netlist);
    AppSatOptions opt;
    opt.base.timeout_seconds = 120.0;
    const AttackResult res = appsat_attack(prot.netlist, oracle, opt);
    ASSERT_EQ(res.status, AttackResult::Status::Success);
    // AppSAT settles on a probably-approximately-correct key; on this small
    // deterministic instance the sampled error must be tiny.
    EXPECT_LT(res.key_error_rate, 0.02);
}

// ---- stochastic defense (Sec. V-B) --------------------------------------------------

class StochasticDefense : public ::testing::TestWithParam<double> {};

TEST_P(StochasticDefense, AttackFailsOrRecoversWrongKey) {
    const double accuracy = GetParam();
    const Netlist nl = small_circuit(61);
    const Protection prot = protect(nl, camo::gshe16(), 0.15);
    StochasticOracle oracle(prot.netlist, accuracy, 17);
    AttackOptions opt;
    opt.timeout_seconds = 60.0;
    const AttackResult res = sat_attack(prot.netlist, oracle, opt);
    // The paper's claim: the attack either becomes inconsistent (no key
    // matches the noisy observations) or converges to a wrong key.
    const bool defeated =
        res.status == AttackResult::Status::Inconsistent ||
        (res.status == AttackResult::Status::Success && !res.key_exact) ||
        res.status == AttackResult::Status::TimedOut;
    EXPECT_TRUE(defeated) << "accuracy " << accuracy << " status "
                          << AttackResult::status_name(res.status);
}

INSTANTIATE_TEST_SUITE_P(AccuracySweep, StochasticDefense,
                         ::testing::Values(0.90, 0.95, 0.99));

TEST(StochasticDefense, DeterministicRegimeStillBreakable) {
    // Control experiment: accuracy 1.0 reduces to the classical attack.
    const Netlist nl = small_circuit(61);
    const Protection prot = protect(nl, camo::gshe16(), 0.15);
    StochasticOracle oracle(prot.netlist, 1.0, 17);
    const AttackResult res = sat_attack(prot.netlist, oracle);
    ASSERT_EQ(res.status, AttackResult::Status::Success);
    EXPECT_TRUE(res.key_exact);
}

// ---- equivalence checker -------------------------------------------------------------

TEST(Equivalence, IdenticalCircuitsEquivalent) {
    const Netlist a = small_circuit(71);
    const Netlist b = small_circuit(71);
    EXPECT_EQ(check_equivalence(a, b).status, EquivStatus::Equivalent);
}

TEST(Equivalence, DifferentCircuitsWithCounterexample) {
    const Netlist a = small_circuit(72);
    // Same structure with one gate function complemented: same interface,
    // provably different function.
    Netlist b = small_circuit(72);
    const netlist::GateId victim = b.outputs()[0].gate;
    ASSERT_EQ(b.gate(victim).type, netlist::CellType::Logic);
    b.gate(victim).fn = b.gate(victim).fn.complement();
    const EquivResult res = check_equivalence(a, b);
    ASSERT_EQ(res.status, EquivStatus::Different);
    ASSERT_TRUE(res.counterexample.has_value());
    // The counterexample really distinguishes them.
    netlist::Simulator sa(a), sb(b);
    const auto oa = sa.run_single(*res.counterexample);
    const auto ob = sb.run_single(*res.counterexample);
    EXPECT_NE(oa, ob);
}

TEST(Equivalence, KeyEquivalenceDetectsWrongKey) {
    const Netlist nl = small_circuit(74);
    const Protection prot = protect(nl, camo::gshe16());
    EXPECT_EQ(check_key_equivalence(prot.netlist, prot.true_key).status,
              EquivStatus::Equivalent);
    camo::Key wrong = prot.true_key;
    wrong.bits[2] = !wrong.bits[2];
    // A single-bit key flip on the 16-function cell changes one truth-table
    // row of one gate: almost always functionally different.
    const EquivResult res = check_key_equivalence(prot.netlist, wrong);
    EXPECT_EQ(res.status, EquivStatus::Different);
}

TEST(Equivalence, InterfaceMismatchThrows) {
    const Netlist a = small_circuit(75);
    netlist::RandomSpec spec;
    spec.n_inputs = 4;
    spec.n_outputs = 4;
    spec.n_gates = 20;
    const Netlist b = netlist::random_circuit(spec);
    EXPECT_THROW(check_equivalence(a, b), std::invalid_argument);
}

// ---- external DIMACS backend (skipped without GSHE_DIMACS_SOLVER) ------------------

/// True when an external MiniSat/CryptoMiniSat-compatible solver was
/// configured (the registry's own availability check); the dimacs-backend
/// attack tests are skipped otherwise so CI without a solver binary stays
/// green.
bool dimacs_backend_configured() {
    return sat::backend_by_name("dimacs").available();
}

TEST(DimacsBackendAttack, SatAttackRecoversKeyOnExternalSolver) {
    if (!dimacs_backend_configured())
        GTEST_SKIP() << sat::kDimacsSolverEnv << " not set";
    // Small instance: every solve re-encodes the whole miter, so keep the
    // DIP count low while still exercising the full attack loop.
    netlist::RandomSpec spec;
    spec.n_inputs = 10;
    spec.n_outputs = 6;
    spec.n_gates = 60;
    spec.seed = 123;
    const Netlist nl = netlist::random_circuit(spec);
    const Protection prot = protect(nl, camo::gshe16(), 0.08, 4);
    ExactOracle oracle(prot.netlist);
    AttackOptions opt;
    opt.timeout_seconds = 120.0;
    opt.solver_backend = "dimacs";
    const AttackResult res = sat_attack(prot.netlist, oracle, opt);
    ASSERT_EQ(res.status, AttackResult::Status::Success);
    EXPECT_TRUE(res.key_exact);
    EXPECT_EQ(check_key_equivalence(prot.netlist, res.key, 120.0).status,
              EquivStatus::Equivalent);
}

TEST(DimacsBackendAttack, EquivalenceChecksOnExternalSolver) {
    if (!dimacs_backend_configured())
        GTEST_SKIP() << sat::kDimacsSolverEnv << " not set";
    const Netlist a = small_circuit(81);
    const Netlist b = small_circuit(81);
    EXPECT_EQ(check_equivalence(a, b, 120.0, {}, "dimacs").status,
              EquivStatus::Equivalent);
    Netlist c = small_circuit(81);
    const netlist::GateId victim = c.outputs()[0].gate;
    c.gate(victim).fn = c.gate(victim).fn.complement();
    EXPECT_EQ(check_equivalence(a, c, 120.0, {}, "dimacs").status,
              EquivStatus::Different);
}

}  // namespace
}  // namespace gshe::attack
