// Tests for the netlist substrate: data structure, simulator, .bench I/O,
// generators, corpus and sequential preprocessing.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/corpus.hpp"
#include "netlist/generator.hpp"
#include "netlist/netlist.hpp"
#include "netlist/sequential.hpp"
#include "netlist/simulator.hpp"

namespace gshe::netlist {
namespace {

using core::Bool2;

Netlist tiny_and_or() {
    // po0 = (a & b) | c
    Netlist nl("tiny");
    const GateId a = nl.add_input("a");
    const GateId b = nl.add_input("b");
    const GateId c = nl.add_input("c");
    const GateId g1 = nl.add_gate(Bool2::AND(), a, b, "g1");
    const GateId g2 = nl.add_gate(Bool2::OR(), g1, c, "g2");
    nl.add_output(g2, "po0");
    return nl;
}

// ---- Netlist structure -------------------------------------------------------

TEST(Netlist, BasicConstruction) {
    const Netlist nl = tiny_and_or();
    EXPECT_EQ(nl.inputs().size(), 3u);
    EXPECT_EQ(nl.outputs().size(), 1u);
    EXPECT_EQ(nl.logic_gate_count(), 2u);
    EXPECT_TRUE(nl.validate());
}

TEST(Netlist, TopologicalOrderRespectsEdges) {
    const Netlist nl = tiny_and_or();
    const auto& order = nl.topological_order();
    std::vector<std::size_t> pos(nl.size());
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    for (GateId id = 0; id < nl.size(); ++id) {
        const Gate& g = nl.gate(id);
        if (g.type != CellType::Logic) continue;
        EXPECT_LT(pos[g.a], pos[id]);
        if (g.b != kNoGate) EXPECT_LT(pos[g.b], pos[id]);
    }
}

TEST(Netlist, LevelsAndDepth) {
    const Netlist nl = tiny_and_or();
    const auto lv = nl.levels();
    EXPECT_EQ(nl.depth(), 2);
    EXPECT_EQ(lv[nl.inputs()[0]], 0);
}

TEST(Netlist, FanoutsComputed) {
    const Netlist nl = tiny_and_or();
    const auto& fo = nl.fanouts();
    EXPECT_EQ(fo[nl.inputs()[0]].size(), 1u);  // a -> g1
}

TEST(Netlist, UnaryGateValidation) {
    Netlist nl;
    const GateId a = nl.add_input("a");
    EXPECT_NO_THROW(nl.add_unary(Bool2::NOT_A(), a));
    EXPECT_THROW(nl.add_unary(Bool2::AND(), a), std::invalid_argument);
    EXPECT_THROW(nl.add_gate(Bool2::AND(), a, 99), std::out_of_range);
}

TEST(Netlist, CamouflageBookkeeping) {
    Netlist nl = tiny_and_or();
    const GateId g1 = 3;  // the AND gate
    nl.camouflage(g1, {Bool2::AND(), Bool2::OR(), Bool2::NAND()}, "testlib");
    EXPECT_EQ(nl.camo_cells().size(), 1u);
    EXPECT_TRUE(nl.gate(g1).is_camouflaged());
    EXPECT_EQ(nl.camo_cells()[0].key_bits(), 2);  // ceil(log2 3)
    EXPECT_EQ(nl.camo_cells()[0].true_index(nl.gate(g1)), 0);
    EXPECT_EQ(nl.key_bit_count(), 2);
    nl.clear_camouflage();
    EXPECT_FALSE(nl.gate(g1).is_camouflaged());
    EXPECT_EQ(nl.key_bit_count(), 0);
}

TEST(Netlist, CamouflageRejectsBadSets) {
    Netlist nl = tiny_and_or();
    EXPECT_THROW(nl.camouflage(3, {Bool2::NAND(), Bool2::NOR()}, "x"),
                 std::invalid_argument);  // true fn (AND) not in set
    nl.camouflage(3, {Bool2::AND(), Bool2::NAND()}, "x");
    EXPECT_THROW(nl.camouflage(3, {Bool2::AND(), Bool2::NAND()}, "x"),
                 std::invalid_argument);  // double camouflage
    EXPECT_THROW(nl.camouflage(nl.inputs()[0], {Bool2::AND()}, "x"),
                 std::invalid_argument);  // not a logic gate
}

TEST(Netlist, RedirectFanouts) {
    Netlist nl = tiny_and_or();
    const GateId inserted = nl.add_unary(Bool2::NOT_A(), 3);
    nl.redirect_fanouts(3, inserted, inserted);
    // g2 now reads the inverter instead of g1.
    EXPECT_EQ(nl.gate(4).a, inserted);
    EXPECT_TRUE(nl.validate());
}

TEST(Netlist, KeyBitsPerCellSizes) {
    CamoCell cell;
    cell.candidates.assign(2, Bool2::AND());
    EXPECT_EQ(cell.key_bits(), 1);
    cell.candidates.assign(3, Bool2::AND());
    EXPECT_EQ(cell.key_bits(), 2);
    cell.candidates.assign(4, Bool2::AND());
    EXPECT_EQ(cell.key_bits(), 2);
    cell.candidates.assign(16, Bool2::AND());
    EXPECT_EQ(cell.key_bits(), 4);
}

// ---- Simulator ------------------------------------------------------------------

TEST(Simulator, TinyCircuitTruth) {
    const Netlist nl = tiny_and_or();
    const Simulator sim(nl);
    for (int m = 0; m < 8; ++m) {
        const bool a = m & 1, b = m & 2, c = m & 4;
        const auto out = sim.run_single({a, b, c});
        EXPECT_EQ(out[0], (a && b) || c);
    }
}

TEST(Simulator, PackedMatchesSingle) {
    RandomSpec spec;
    spec.n_inputs = 10;
    spec.n_outputs = 6;
    spec.n_gates = 80;
    spec.seed = 77;
    const Netlist nl = random_circuit(spec);
    const Simulator sim(nl);
    Rng rng(5);
    std::vector<std::uint64_t> pi(nl.inputs().size());
    for (auto& w : pi) w = rng();
    const auto packed = sim.run(pi);
    for (int bit = 0; bit < 64; bit += 7) {
        std::vector<bool> single(pi.size());
        for (std::size_t i = 0; i < pi.size(); ++i)
            single[i] = ((pi[i] >> bit) & 1) != 0;
        const auto out = sim.run_single(single);
        for (std::size_t o = 0; o < out.size(); ++o)
            EXPECT_EQ(out[o], ((packed[o] >> bit) & 1) != 0);
    }
}

TEST(Simulator, EvalWordMatchesTruthTables) {
    for (Bool2 f : Bool2::all()) {
        const std::uint64_t a = 0b1100, b = 0b1010;
        const std::uint64_t r = Simulator::eval_word(f, a, b) & 0xF;
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(((r >> i) & 1) != 0, f.eval((a >> i) & 1, (b >> i) & 1));
    }
}

TEST(Simulator, FunctionOverridesApply) {
    Netlist nl = tiny_and_or();
    nl.camouflage(3, {Bool2::AND(), Bool2::OR()}, "lib");
    const Simulator sim(nl);
    std::vector<std::uint64_t> pi = {~0ULL, 0ULL, 0ULL};  // a=1, b=0, c=0
    const auto truth = sim.run(pi);
    EXPECT_EQ(truth[0], 0ULL);  // (1&0)|0 = 0
    const core::Bool2 ovr[] = {Bool2::OR()};
    const auto forged = sim.run_with_functions(pi, ovr);
    EXPECT_EQ(forged[0], ~0ULL);  // (1|0)|0 = 1
}

TEST(Simulator, NoisyFlipMasksApply) {
    Netlist nl = tiny_and_or();
    nl.camouflage(3, {Bool2::AND(), Bool2::OR()}, "lib");
    const Simulator sim(nl);
    std::vector<std::uint64_t> pi = {~0ULL, ~0ULL, 0ULL};  // a=b=1, c=0
    const std::uint64_t masks[] = {0xFFULL};  // flip patterns 0..7
    const auto out = sim.run_noisy(pi, masks);
    EXPECT_EQ(out[0], ~0xFFULL);  // true 1 everywhere, flipped low byte
}

TEST(Simulator, InputCountValidated) {
    const Netlist nl = tiny_and_or();
    const Simulator sim(nl);
    std::vector<std::uint64_t> wrong(2);
    EXPECT_THROW(sim.run(wrong), std::invalid_argument);
}

// ---- bench I/O --------------------------------------------------------------------

TEST(BenchIo, ParsesC17) {
    const Netlist nl = c17();
    EXPECT_EQ(nl.inputs().size(), 5u);
    EXPECT_EQ(nl.outputs().size(), 2u);
    EXPECT_EQ(nl.logic_gate_count(), 6u);
    EXPECT_TRUE(nl.validate());
}

TEST(BenchIo, C17KnownVectors) {
    const Netlist nl = c17();
    const Simulator sim(nl);
    // c17: O22 = N10 NAND N16; exhaustive check against the reference
    // equations 22 = !( !(1&3) & !(2 & !(3&6)) ), 23 = !( !(2&!(3&6)) & !(!(3&6)&7) ).
    for (int m = 0; m < 32; ++m) {
        const bool i1 = m & 1, i2 = m & 2, i3 = m & 4, i6 = m & 8, i7 = m & 16;
        const bool n11 = !(i3 && i6);
        const bool n10 = !(i1 && i3);
        const bool n16 = !(i2 && n11);
        const bool n19 = !(n11 && i7);
        const bool o22 = !(n10 && n16);
        const bool o23 = !(n16 && n19);
        const auto out = sim.run_single({i1, i2, i3, i6, i7});
        EXPECT_EQ(out[0], o22) << m;
        EXPECT_EQ(out[1], o23) << m;
    }
}

TEST(BenchIo, RoundTripPreservesFunction) {
    RandomSpec spec;
    spec.n_inputs = 8;
    spec.n_outputs = 8;
    spec.n_gates = 60;
    spec.seed = 3;
    const Netlist a = random_circuit(spec);
    const Netlist b = read_bench_string(write_bench_string(a), "rt");
    ASSERT_EQ(a.inputs().size(), b.inputs().size());
    ASSERT_EQ(a.outputs().size(), b.outputs().size());
    const Simulator sa(a), sb(b);
    Rng rng(17);
    for (int t = 0; t < 20; ++t) {
        std::vector<std::uint64_t> pi(a.inputs().size());
        for (auto& w : pi) w = rng();
        const auto oa = sa.run(pi);
        const auto ob = sb.run(pi);
        for (std::size_t o = 0; o < oa.size(); ++o) EXPECT_EQ(oa[o], ob[o]);
    }
}

TEST(BenchIo, MultiInputGatesDecompose) {
    const Netlist nl = read_bench_string(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n"
        "y = NAND(a, b, c, d)\n");
    const Simulator sim(nl);
    for (int m = 0; m < 16; ++m) {
        const bool a = m & 1, b = m & 2, c = m & 4, d = m & 8;
        EXPECT_EQ(sim.run_single({a, b, c, d})[0], !(a && b && c && d));
    }
}

TEST(BenchIo, ForwardReferencesResolve) {
    const Netlist nl = read_bench_string(
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
        "y = AND(t, b)\n"   // t defined later
        "t = NOT(a)\n");
    const Simulator sim(nl);
    EXPECT_EQ(sim.run_single({false, true})[0], true);
    EXPECT_EQ(sim.run_single({true, true})[0], false);
}

TEST(BenchIo, DffRoundTrip) {
    const Netlist nl = read_bench_string(
        "INPUT(d)\nOUTPUT(q)\nff = DFF(d)\nq = BUF(ff)\n");
    EXPECT_EQ(nl.dffs().size(), 1u);
    const Netlist rt = read_bench_string(write_bench_string(nl), "rt");
    EXPECT_EQ(rt.dffs().size(), 1u);
}

TEST(BenchIo, ErrorsAreReported) {
    EXPECT_THROW(read_bench_string("garbage line\n"), std::runtime_error);
    EXPECT_THROW(read_bench_string("y = FROB(a)\nINPUT(a)\nOUTPUT(y)\n"),
                 std::runtime_error);
    EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\ny = AND(a, zz)\n"),
                 std::runtime_error);
}

TEST(BenchIo, CamoCommentsEmitted) {
    Netlist nl = tiny_and_or();
    nl.camouflage(3, {Bool2::AND(), Bool2::OR()}, "gshe16");
    const std::string text = write_bench_string(nl);
    EXPECT_NE(text.find("# camo"), std::string::npos);
    EXPECT_NE(text.find("gshe16"), std::string::npos);
}

// ---- generators --------------------------------------------------------------------

TEST(Generator, RandomCircuitMatchesSpec) {
    RandomSpec spec;
    spec.n_inputs = 20;
    spec.n_outputs = 10;
    spec.n_gates = 150;
    spec.seed = 11;
    const Netlist nl = random_circuit(spec);
    EXPECT_EQ(nl.inputs().size(), 20u);
    EXPECT_GE(nl.outputs().size(), 10u);  // extras drain unused nodes
    EXPECT_EQ(nl.logic_gate_count(), 150u);
    EXPECT_TRUE(nl.validate());
}

TEST(Generator, RandomCircuitIsDeterministic) {
    RandomSpec spec;
    spec.seed = 123;
    const std::string a = write_bench_string(random_circuit(spec));
    const std::string b = write_bench_string(random_circuit(spec));
    EXPECT_EQ(a, b);
}

TEST(Generator, DifferentSeedsDifferentCircuits) {
    RandomSpec a, b;
    a.seed = 1;
    b.seed = 2;
    EXPECT_NE(write_bench_string(random_circuit(a)),
              write_bench_string(random_circuit(b)));
}

TEST(Generator, NoDanglingLogic) {
    RandomSpec spec;
    spec.seed = 9;
    const Netlist nl = random_circuit(spec);
    const auto& fo = nl.fanouts();
    std::set<GateId> po_drivers;
    for (const PortRef& po : nl.outputs()) po_drivers.insert(po.gate);
    for (GateId id = 0; id < nl.size(); ++id) {
        if (nl.gate(id).type != CellType::Logic) continue;
        EXPECT_TRUE(!fo[id].empty() || po_drivers.count(id))
            << "gate " << id << " dangles";
    }
}

TEST(Generator, RippleCarryAdderAddsCorrectly) {
    const Netlist nl = ripple_carry_adder(8);
    const Simulator sim(nl);
    Rng rng(3);
    for (int t = 0; t < 200; ++t) {
        const unsigned a = static_cast<unsigned>(rng.below(256));
        const unsigned b = static_cast<unsigned>(rng.below(256));
        const unsigned cin = static_cast<unsigned>(rng.below(2));
        std::vector<bool> pi;
        for (int i = 0; i < 8; ++i) pi.push_back((a >> i) & 1);
        for (int i = 0; i < 8; ++i) pi.push_back((b >> i) & 1);
        pi.push_back(cin != 0);
        const auto out = sim.run_single(pi);
        const unsigned sum = a + b + cin;
        for (int i = 0; i < 9; ++i)
            ASSERT_EQ(out[static_cast<std::size_t>(i)], ((sum >> i) & 1) != 0)
                << a << "+" << b << "+" << cin;
    }
}

TEST(Generator, ArrayMultiplierMultipliesCorrectly) {
    const Netlist nl = array_multiplier(6);
    const Simulator sim(nl);
    Rng rng(4);
    for (int t = 0; t < 200; ++t) {
        const unsigned a = static_cast<unsigned>(rng.below(64));
        const unsigned b = static_cast<unsigned>(rng.below(64));
        std::vector<bool> pi;
        for (int i = 0; i < 6; ++i) pi.push_back((a >> i) & 1);
        for (int i = 0; i < 6; ++i) pi.push_back((b >> i) & 1);
        const auto out = sim.run_single(pi);
        const unsigned prod = a * b;
        ASSERT_EQ(out.size(), 12u);
        for (int i = 0; i < 12; ++i)
            ASSERT_EQ(out[static_cast<std::size_t>(i)], ((prod >> i) & 1) != 0)
                << a << "*" << b;
    }
}

TEST(Generator, SequentialCircuitHasFlipFlops) {
    SequentialSpec spec;
    spec.n_ffs = 24;
    spec.seed = 6;
    const Netlist nl = random_sequential(spec);
    EXPECT_EQ(nl.dffs().size(), 24u);
    EXPECT_TRUE(nl.validate());
}

TEST(Generator, LayeredCircuitDepthDominatedByChains) {
    LayeredSpec spec;
    spec.bulk_gates = 2000;
    spec.bulk_depth = 10;
    spec.n_chains = 2;
    spec.chain_length = 100;
    spec.n_inputs = 64;
    spec.n_outputs = 64;
    const Netlist nl = layered_circuit(spec);
    EXPECT_GE(nl.depth(), 100);
    EXPECT_TRUE(nl.validate());
}

// ---- sequential preprocessing -------------------------------------------------------

TEST(Sequential, UnrollMovesFlipFlopsToPorts) {
    SequentialSpec spec;
    spec.n_inputs = 8;
    spec.n_outputs = 8;
    spec.n_ffs = 12;
    spec.n_gates = 100;
    spec.seed = 2;
    const Netlist seq = random_sequential(spec);
    const Netlist comb = unroll_for_scan(seq);
    EXPECT_TRUE(comb.dffs().empty());
    EXPECT_EQ(comb.inputs().size(), seq.inputs().size() + seq.dffs().size());
    EXPECT_EQ(comb.outputs().size(), seq.outputs().size() + seq.dffs().size());
    EXPECT_TRUE(comb.validate());
}

TEST(Sequential, UnrollPreservesCombinationalFunction) {
    SequentialSpec spec;
    spec.n_inputs = 6;
    spec.n_outputs = 5;
    spec.n_ffs = 7;
    spec.n_gates = 60;
    spec.seed = 8;
    const Netlist seq = random_sequential(spec);
    const Netlist comb = unroll_for_scan(seq);
    const Simulator s_seq(seq), s_comb(comb);

    Rng rng(10);
    std::vector<std::uint64_t> pi(seq.inputs().size());
    for (auto& w : pi) w = rng();
    std::vector<std::uint64_t> state(seq.dffs().size());
    for (auto& w : state) w = rng();

    // Sequential view: POs with DFF outputs forced to `state`.
    const auto seq_out = s_seq.run(pi, state);
    // Scan view: state appended to the inputs.
    std::vector<std::uint64_t> comb_pi = pi;
    comb_pi.insert(comb_pi.end(), state.begin(), state.end());
    const auto comb_out = s_comb.run(comb_pi);
    for (std::size_t o = 0; o < seq_out.size(); ++o)
        EXPECT_EQ(comb_out[o], seq_out[o]);
}

TEST(Sequential, UnrollPreservesCamouflage) {
    SequentialSpec spec;
    spec.seed = 12;
    Netlist seq = random_sequential(spec);
    // Camouflage one NAND gate.
    for (GateId id = 0; id < seq.size(); ++id)
        if (seq.gate(id).type == CellType::Logic &&
            seq.gate(id).fn == Bool2::NAND() && seq.gate(id).fanin_count() == 2) {
            seq.camouflage(id, {Bool2::NAND(), Bool2::NOR()}, "lib");
            break;
        }
    ASSERT_EQ(seq.camo_cells().size(), 1u);
    const Netlist comb = unroll_for_scan(seq);
    EXPECT_EQ(comb.camo_cells().size(), 1u);
    EXPECT_EQ(comb.camo_cells()[0].candidates.size(), 2u);
}

// ---- corpus -----------------------------------------------------------------------

TEST(Corpus, EntriesCoverTable3) {
    const auto& entries = corpus_entries();
    EXPECT_GE(entries.size(), 12u);
    std::set<std::string> names;
    for (const auto& e : entries) names.insert(e.name);
    for (const char* required :
         {"aes_core", "b14", "b21", "c7552", "ex1010", "log2", "pci_bridge32",
          "sb1", "sb5", "sb10", "sb12", "sb18", "s38584"})
        EXPECT_TRUE(names.count(required)) << required;
}

TEST(Corpus, BenchmarksBuildAndValidate) {
    for (const char* name : {"c7552", "ex1010", "b14", "log2"}) {
        const Netlist nl = build_benchmark(name);
        EXPECT_TRUE(nl.validate()) << name;
        EXPECT_GT(nl.logic_gate_count(), 100u) << name;
    }
}

TEST(Corpus, Ex1010HasTenInputs) {
    // The characteristic that makes ex1010 the one benchmark resolvable even
    // at 100% protection (Table IV footnote) is its tiny input space.
    const Netlist nl = build_benchmark("ex1010");
    EXPECT_EQ(nl.inputs().size(), 10u);
}

TEST(Corpus, BuildsAreDeterministic) {
    const std::string a = write_bench_string(build_benchmark("c7552"));
    const std::string b = write_bench_string(build_benchmark("c7552"));
    EXPECT_EQ(a, b);
}

TEST(Corpus, SequentialBenchmarkHasFlipFlops) {
    const Netlist nl = build_benchmark("s38584");
    EXPECT_GT(nl.dffs().size(), 100u);
}

TEST(Corpus, UnknownNameThrows) {
    EXPECT_THROW(build_benchmark("nope"), std::invalid_argument);
}

TEST(Corpus, ClassFilters) {
    for (const auto& e : sat_attack_corpus())
        EXPECT_EQ(static_cast<int>(e.cls), static_cast<int>(CorpusClass::SatAttack));
    EXPECT_EQ(timing_corpus().size(), 5u);
}

}  // namespace
}  // namespace gshe::netlist
