// Edge-case tests for src/common/json — the checkpoint journal's read side.
// A journal that survives kills, NFS copies and hand merges can present the
// parser with every kind of damage; each case here must yield a clean
// nullopt (the record re-runs) rather than a crash, a hang, or — worst — a
// silently wrong value. Focus areas: unterminated strings, trailing garbage
// after the root, exact u64 round-trips at the extremes, and deeply nested
// unknown fields riding through record decoding untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "common/report.hpp"
#include "engine/checkpoint.hpp"

namespace gshe {
namespace {

// ---- unterminated strings ---------------------------------------------------

TEST(JsonEdge, UnterminatedStringsAreRejectedEverywhere) {
    // A kill mid-append truncates the line at an arbitrary byte — often
    // inside a string. Every truncation shape must fail cleanly.
    for (const char* bad : {
             "\"open",                    // bare unterminated string
             "\"ends with backslash\\",   // escape sequence cut in half
             "\"bad unicode \\u12",       // \u escape cut in half
             "{\"key",                    // unterminated object key
             "{\"key\":\"value",          // unterminated member value
             "[\"a\",\"b",                // unterminated array element
             "{\"a\":{\"b\":\"deep",      // nested unterminated
         })
        EXPECT_FALSE(json::parse(bad).has_value()) << bad;
}

TEST(JsonEdge, ControlCharactersInsideStringsAreRejected) {
    // Raw control bytes (a torn multi-line write) must not decode.
    EXPECT_FALSE(json::parse("\"a\nb\"").has_value());
    EXPECT_FALSE(json::parse("\"a\tb\"").has_value());
    EXPECT_TRUE(json::parse("\"a\\nb\"").has_value());  // escaped is fine
}

// ---- trailing garbage -------------------------------------------------------

TEST(JsonEdge, TrailingGarbageAfterTheRootIsRejected) {
    // Two journal lines glued together (lost newline) must not parse as
    // the first record alone — that would silently drop the second job.
    for (const char* bad : {
             "{\"a\":1}{\"b\":2}",        // two records, lost newline
             "{\"a\":1} {\"b\":2}",       // same with whitespace
             "{\"a\":1}x",                // stray byte
             "{\"a\":1}]",                // stray closer
             "[1,2]3",                    // number glued to array
             "true false",                // two scalars
             "1 2",
         })
        EXPECT_FALSE(json::parse(bad).has_value()) << bad;
    // Trailing whitespace alone is benign.
    EXPECT_TRUE(json::parse("{\"a\":1}  \n").has_value());
}

// ---- u64 extremes -----------------------------------------------------------

TEST(JsonEdge, U64MaxRoundTripsThroughWriterAndParser) {
    // UINT64_MAX is a real journal value (the "unlimited" conflict budget)
    // and does not fit a double; the raw-token design must carry it
    // exactly through a full write -> parse -> read cycle.
    JsonWriter w;
    w.begin_object();
    w.key("max");
    w.value(UINT64_MAX);
    w.key("above_i64");
    w.value(std::uint64_t{9223372036854775808ULL});  // INT64_MAX + 1
    w.key("zero");
    w.value(std::uint64_t{0});
    w.end_object();

    const auto v = json::parse(w.str());
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("max")->as_u64(), UINT64_MAX);
    EXPECT_EQ(v->find("above_i64")->as_u64(), 9223372036854775808ULL);
    EXPECT_EQ(v->find("zero")->as_u64(), 0u);
    // The same token read with the wrong signedness falls back, it does
    // not wrap: as_i64 cannot represent UINT64_MAX.
    EXPECT_EQ(v->find("max")->as_i64(-1), INT64_MAX);  // strtoll saturates
    // And a negative token never becomes a huge unsigned value.
    const auto neg = json::parse("{\"n\":-5}");
    ASSERT_TRUE(neg.has_value());
    EXPECT_EQ(neg->find("n")->as_u64(7), 7u) << "fallback, not wraparound";
    EXPECT_EQ(neg->find("n")->as_i64(), -5);
}

TEST(JsonEdge, I64MinRoundTrips) {
    JsonWriter w;
    w.begin_object();
    w.key("min");
    w.value(INT64_MIN);
    w.end_object();
    const auto v = json::parse(w.str());
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("min")->as_i64(), INT64_MIN);
}

TEST(JsonEdge, MalformedNumbersAreRejected) {
    for (const char* bad : {"-", "+1", "1.", ".5", "1e", "1e+", "0x10",
                            "--3", "1..2", "1ee3"})
        EXPECT_FALSE(json::parse(bad).has_value()) << bad;
    for (const char* good : {"-0", "0.0", "1e3", "1E-3", "-2.5e+10"})
        EXPECT_TRUE(json::parse(good).has_value()) << good;
}

// ---- deeply nested unknown fields -------------------------------------------

namespace {

std::string nested_object(int depth) {
    std::string open, close;
    for (int i = 0; i < depth; ++i) {
        open += "{\"d\":";
        close += "}";
    }
    return open + "1" + close;
}

}  // namespace

TEST(JsonEdge, DeeplyNestedUnknownFieldsRideThroughRecordDecoding) {
    // A future journal writer may attach arbitrarily structured metadata.
    // Today's decoder must skip a deep unknown subtree (within the parser's
    // recursion limit) without touching the fields it does know.
    using namespace gshe::engine;
    JobSpec spec;
    spec.circuit = "alpha";
    spec.seed = 3;
    JobResult result;
    result.index = 4;
    result.circuit = "alpha";
    const std::uint64_t key = checkpoint::job_key(1, 4, spec);
    std::string line = checkpoint::encode_record(key, spec, result);

    // 40 levels of unknown nesting inside the record root: decodable.
    const std::string deep = "\"future\":" + nested_object(40) + ",";
    line.insert(line.find("\"spec\""), deep);
    ASSERT_NE(json::parse(line), std::nullopt);
    const auto record = checkpoint::decode_record(line);
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->key, key);
    EXPECT_EQ(record->spec.circuit, "alpha");
    EXPECT_EQ(record->result.index, 4u);
}

TEST(JsonEdge, NestingBeyondTheDepthLimitFailsCleanly) {
    // 63 levels parse; beyond the limit fails instead of overflowing the
    // stack — whether or not the document is well-formed.
    EXPECT_TRUE(json::parse(nested_object(63)).has_value());
    EXPECT_FALSE(json::parse(nested_object(65)).has_value());
    EXPECT_FALSE(json::parse(std::string(5000, '[')).has_value());
}

TEST(JsonEdge, DuplicateKeysResolveToTheFirstOccurrence) {
    // find() takes the first member with the key: a (malformed) duplicate
    // cannot shadow the value the writer emitted first.
    const auto v = json::parse("{\"a\":1,\"a\":2}");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("a")->as_u64(), 1u);
}

TEST(JsonEdge, EmptyContainersAndWhitespaceForms) {
    EXPECT_TRUE(json::parse("{}").has_value());
    EXPECT_TRUE(json::parse("[]").has_value());
    EXPECT_TRUE(json::parse(" { \"a\" : [ ] } ").has_value());
    EXPECT_FALSE(json::parse("   ").has_value());
    EXPECT_FALSE(json::parse("{,}").has_value());
    EXPECT_FALSE(json::parse("[,]").has_value());
    EXPECT_FALSE(json::parse("{\"a\":1,}").has_value());
    EXPECT_FALSE(json::parse("[1,]").has_value());
}

}  // namespace
}  // namespace gshe
