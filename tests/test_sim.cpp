// Tests for the levelized bit-sliced simulation engine (netlist/sim_plan.hpp
// + the Simulator rewrite): plan-kernel vs reference-walk word equality on
// 200 randomized netlists (camo overrides, noisy flip masks, DFF words),
// cone-restricted vs full sweep equality on every frontier read gate,
// multi-word vs repeated-64 equality, plan-cache invalidation under
// camouflage() / clear_camouflage(), and — the trajectory-changing axis —
// that --dip-support=cone recovers correct keys wherever "full" does and
// keeps the campaign CSV byte-identity contract (threads x resume) against
// its own baseline.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "attack/attack_result.hpp"
#include "attack/miter_detail.hpp"
#include "attack/oracle.hpp"
#include "attack/sat_attack.hpp"
#include "camo/cell_library.hpp"
#include "camo/protect.hpp"
#include "engine/campaign.hpp"
#include "engine/checkpoint.hpp"
#include "engine/report.hpp"
#include "netlist/generator.hpp"
#include "netlist/netlist.hpp"
#include "netlist/sim_plan.hpp"
#include "netlist/simulator.hpp"

namespace gshe {
namespace {

using attack::DipSupportMode;
using engine::CampaignOptions;
using engine::CampaignRunner;
using engine::DefenseConfig;
using engine::JobSpec;
using netlist::Netlist;
using netlist::Simulator;

std::vector<std::uint64_t> random_words(std::mt19937_64& rng, std::size_t n) {
    std::vector<std::uint64_t> w(n);
    for (auto& x : w) x = rng();
    return w;
}

/// Attacker-view override draw: each camo cell picks a random candidate.
std::vector<core::Bool2> random_overrides(const Netlist& nl,
                                          std::mt19937_64& rng) {
    std::vector<core::Bool2> fns;
    fns.reserve(nl.camo_cells().size());
    for (const auto& cell : nl.camo_cells())
        fns.push_back(cell.candidates[rng() % cell.candidates.size()]);
    return fns;
}

// ---- plan kernel vs reference walk ------------------------------------------

TEST(SimPlanKernel, TwoHundredRandomNetlistsMatchTheReferenceWalk) {
    // The tentpole's core claim: the level-major SoA kernel computes
    // bit-identical words to the historical per-gate topological walk, for
    // the oracle view, the attacker (override) view, and the noisy view.
    std::size_t camo_checked = 0;
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull);
        netlist::RandomSpec spec;
        spec.n_inputs = 6 + static_cast<int>(seed % 13);
        spec.n_outputs = 3 + static_cast<int>(seed % 7);
        spec.n_gates = 30 + static_cast<int>(seed % 90);
        spec.seed = seed;
        const Netlist plain = netlist::random_circuit(spec);
        const camo::Protection prot = camo::apply_camouflage(
            plain, camo::select_gates(plain, 0.15, seed), camo::gshe16(),
            seed);
        const Netlist& nl = prot.netlist;
        const Simulator sim(nl);

        const auto pi = random_words(rng, nl.inputs().size());
        // Oracle view.
        EXPECT_EQ(sim.run(pi), sim.run_reference(pi)) << "seed " << seed;
        if (nl.camo_cells().empty()) continue;
        ++camo_checked;
        // Attacker view under a random key guess.
        const auto fns = random_overrides(nl, rng);
        EXPECT_EQ(sim.run_with_functions(pi, fns),
                  sim.run_reference(pi, fns))
            << "seed " << seed;
        // Stochastic-primitive view: random per-cell flip masks.
        const auto flips = random_words(rng, nl.camo_cells().size());
        EXPECT_EQ(sim.run_noisy(pi, flips),
                  sim.run_reference(pi, {}, {}, flips))
            << "seed " << seed;
    }
    // The sweep exercised real camouflage, not 200 plain circuits.
    EXPECT_GT(camo_checked, 150u);
}

TEST(SimPlanKernel, SequentialNetlistsMatchTheReferenceWalkWithDffWords) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        std::mt19937_64 rng(seed);
        netlist::SequentialSpec spec;
        spec.n_inputs = 8;
        spec.n_outputs = 6;
        spec.n_ffs = 10;
        spec.n_gates = 80;
        spec.seed = seed;
        const Netlist nl = netlist::random_sequential(spec);
        const Simulator sim(nl);

        const auto pi = random_words(rng, nl.inputs().size());
        const auto dff = random_words(rng, nl.dffs().size());
        EXPECT_EQ(sim.run(pi, dff), sim.run_reference(pi, {}, dff))
            << "seed " << seed;
        // Empty dff_words means all-zero DFF outputs, as before.
        EXPECT_EQ(sim.run(pi), sim.run_reference(pi)) << "seed " << seed;
    }
}

TEST(SimPlanKernel, RunSingleAndRunAllAgreeWithThePackedSweep) {
    netlist::RandomSpec spec;
    spec.n_inputs = 10;
    spec.n_outputs = 6;
    spec.n_gates = 60;
    spec.seed = 77;
    const Netlist plain = netlist::random_circuit(spec);
    const camo::Protection prot = camo::apply_camouflage(
        plain, camo::select_gates(plain, 0.15, 7), camo::gshe16(), 7);
    const Netlist& nl = prot.netlist;
    const Simulator sim(nl);

    std::mt19937_64 rng(99);
    std::vector<bool> pattern(nl.inputs().size());
    std::vector<std::uint64_t> pi(nl.inputs().size());
    for (std::size_t i = 0; i < pattern.size(); ++i) {
        pattern[i] = (rng() & 1) != 0;
        pi[i] = pattern[i] ? ~0ull : 0ull;
    }
    const std::vector<std::uint64_t> outs = sim.run(pi);
    const std::vector<bool> single = sim.run_single(pattern);
    ASSERT_EQ(single.size(), outs.size());
    for (std::size_t o = 0; o < outs.size(); ++o)
        EXPECT_EQ(single[o], (outs[o] & 1) != 0) << "output " << o;

    // run_single_all / the allocation-free span twin agree gate for gate.
    const std::vector<char> all = sim.run_single_all(pattern);
    const std::span<const char> all_span = sim.run_single_all_span(pattern);
    ASSERT_EQ(all.size(), nl.size());
    ASSERT_EQ(all_span.size(), nl.size());
    for (std::size_t g = 0; g < nl.size(); ++g)
        EXPECT_EQ(all[g], all_span[g]) << "gate " << g;

    const std::vector<std::uint64_t> words = sim.run_all(pi);
    ASSERT_EQ(words.size(), nl.size());
    for (std::size_t g = 0; g < nl.size(); ++g)
        EXPECT_EQ((words[g] & 1) != 0, all[g] != 0) << "gate " << g;
}

// ---- multi-word sweeps ------------------------------------------------------

TEST(MultiWordSweep, MatchesRepeatedSixtyFourBitSweeps) {
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        std::mt19937_64 rng(seed * 31337);
        netlist::RandomSpec spec;
        spec.n_inputs = 9;
        spec.n_outputs = 5;
        spec.n_gates = 70;
        spec.seed = seed;
        const Netlist plain = netlist::random_circuit(spec);
        const camo::Protection prot = camo::apply_camouflage(
            plain, camo::select_gates(plain, 0.15, seed), camo::gshe16(),
            seed);
        const Netlist& nl = prot.netlist;
        const Simulator sim(nl);
        const std::size_t n_in = nl.inputs().size();
        const std::size_t n_out = nl.outputs().size();
        const std::size_t n_words = 1 + seed % 16;

        // Input-major multi-word block and its per-word slices.
        const auto pi_words = random_words(rng, n_in * n_words);
        const auto fns = random_overrides(nl, rng);
        const auto multi = sim.run_words(pi_words, n_words);
        const auto multi_fn =
            sim.run_words_with_functions(pi_words, n_words, fns);
        ASSERT_EQ(multi.size(), n_out * n_words);
        ASSERT_EQ(multi_fn.size(), n_out * n_words);
        for (std::size_t w = 0; w < n_words; ++w) {
            std::vector<std::uint64_t> slice(n_in);
            for (std::size_t i = 0; i < n_in; ++i)
                slice[i] = pi_words[i * n_words + w];
            const auto one = sim.run(slice);
            const auto one_fn = sim.run_with_functions(slice, fns);
            for (std::size_t o = 0; o < n_out; ++o) {
                EXPECT_EQ(multi[o * n_words + w], one[o])
                    << "seed " << seed << " word " << w << " out " << o;
                EXPECT_EQ(multi_fn[o * n_words + w], one_fn[o])
                    << "seed " << seed << " word " << w << " out " << o;
            }
        }
    }
}

TEST(MultiWordSweep, RejectsBadArguments) {
    const Netlist nl = netlist::c17();
    const Simulator sim(nl);
    const std::vector<std::uint64_t> pi(nl.inputs().size() * 2, 0);
    EXPECT_THROW(sim.run_words(pi, 0), std::invalid_argument);
    // Word count not matching inputs() * n_words.
    EXPECT_THROW(sim.run_words(pi, 3), std::invalid_argument);
}

// ---- cone-restricted sweeps -------------------------------------------------

TEST(FrontierSweep, EqualsTheFullSweepOnEveryReadGate) {
    // The acceptance property for the restricted plan: every gate in
    // frontier_read_set() carries exactly the full-sweep value, single-bit
    // and multi-word, on 100 randomized camouflaged netlists.
    std::size_t restricted_somewhere = 0;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        std::mt19937_64 rng(seed ^ 0xDEADBEEFull);
        netlist::RandomSpec spec;
        spec.n_inputs = 8 + static_cast<int>(seed % 8);
        spec.n_outputs = 4 + static_cast<int>(seed % 5);
        spec.n_gates = 40 + static_cast<int>(seed % 80);
        spec.seed = seed;
        const Netlist plain = netlist::random_circuit(spec);
        const camo::Protection prot = camo::apply_camouflage(
            plain, camo::select_gates(plain, 0.10, seed), camo::gshe16(),
            seed);
        const Netlist& nl = prot.netlist;
        const Simulator sim(nl);
        const std::vector<netlist::GateId>& reads = nl.frontier_read_set();

        // The sub-plan never needs more steps than the full plan, and the
        // whole point is that it usually needs fewer.
        ASSERT_LE(nl.frontier_plan().steps(), nl.sim_plan().steps())
            << "seed " << seed;
        if (nl.frontier_plan().steps() < nl.sim_plan().steps())
            ++restricted_somewhere;

        // Single-pattern: frontier values match run_single_all at reads.
        std::vector<bool> pattern(nl.inputs().size());
        for (std::size_t i = 0; i < pattern.size(); ++i)
            pattern[i] = (rng() & 1) != 0;
        const std::vector<char> full = sim.run_single_all(pattern);
        const std::span<const char> frontier = sim.run_frontier_single(pattern);
        for (const netlist::GateId g : reads)
            EXPECT_EQ(frontier[g], full[g]) << "seed " << seed << " gate " << g;

        // Multi-word: frontier words match per-word run_all at reads.
        const std::size_t n_words = 1 + seed % 4;
        const auto pi_words =
            random_words(rng, nl.inputs().size() * n_words);
        const std::span<const std::uint64_t> fw =
            sim.run_frontier_words(pi_words, n_words);
        ASSERT_EQ(fw.size(), nl.size() * n_words) << "seed " << seed;
        // Copy before the next run invalidates the scratch-aliasing span.
        const std::vector<std::uint64_t> fw_copy(fw.begin(), fw.end());
        for (std::size_t w = 0; w < n_words; ++w) {
            std::vector<std::uint64_t> slice(nl.inputs().size());
            for (std::size_t i = 0; i < slice.size(); ++i)
                slice[i] = pi_words[i * n_words + w];
            const std::vector<std::uint64_t> all = sim.run_all(slice);
            for (const netlist::GateId g : reads)
                EXPECT_EQ(fw_copy[g * n_words + w], all[g])
                    << "seed " << seed << " word " << w << " gate " << g;
        }
    }
    EXPECT_GT(restricted_somewhere, 50u);
}

TEST(FrontierSweep, RestrictedPlanRejectsUnknownReadGates) {
    const Netlist nl = netlist::c17();
    const netlist::GateId bogus = static_cast<netlist::GateId>(nl.size());
    EXPECT_THROW(netlist::build_restricted_plan(nl, std::vector{bogus}),
                 std::out_of_range);
}

// ---- plan-cache invalidation ------------------------------------------------

TEST(PlanCache, CamouflageAndClearInvalidateThePlans) {
    netlist::RandomSpec spec;
    spec.n_inputs = 8;
    spec.n_outputs = 4;
    spec.n_gates = 40;
    spec.seed = 5;
    Netlist nl = netlist::random_circuit(spec);

    // Warm every plan cache on the plain netlist.
    const std::size_t plain_steps = nl.sim_plan().steps();
    ASSERT_TRUE(nl.camo_cells().empty());
    EXPECT_TRUE(nl.sim_plan().camo_step.empty());
    // No camouflage: nothing is in the key support.
    for (const char f : nl.key_support()) EXPECT_EQ(f, 0);

    // Camouflage a NAND/NOR gate in place: the rebuilt plan must bind the
    // new camo step and the support must become non-empty.
    netlist::GateId target = netlist::kNoGate;
    for (netlist::GateId g = 0; g < nl.size(); ++g) {
        const netlist::Gate& gate = nl.gate(g);
        if (gate.type == netlist::CellType::Logic &&
            (gate.fn == core::Bool2::NAND() || gate.fn == core::Bool2::NOR())) {
            target = g;
            break;
        }
    }
    ASSERT_NE(target, netlist::kNoGate);
    nl.camouflage(target, {core::Bool2::NAND(), core::Bool2::NOR()}, "test");
    ASSERT_EQ(nl.camo_cells().size(), 1u);
    ASSERT_EQ(nl.sim_plan().camo_step.size(), 1u);
    EXPECT_EQ(nl.sim_plan().out[nl.sim_plan().camo_step[0]], target);
    EXPECT_NE(nl.key_support()[target], 0);
    EXPECT_EQ(nl.sim_plan().steps(), plain_steps);

    // The rebuilt plan actually routes overrides: forcing the complement
    // function must flip the gate's value on some pattern.
    const Simulator sim(nl);
    std::mt19937_64 rng(17);
    const auto pi = random_words(rng, nl.inputs().size());
    const core::Bool2 truth = nl.gate(target).fn;
    const core::Bool2 other =
        truth == core::Bool2::NAND() ? core::Bool2::NOR() : core::Bool2::NAND();
    const auto true_all = sim.run_all(pi);
    const std::vector<core::Bool2> wrong{other};
    EXPECT_EQ(sim.run_with_functions(pi, wrong), sim.run_reference(pi, wrong));

    // clear_camouflage() drops the binding again and empties the support.
    nl.clear_camouflage();
    EXPECT_TRUE(nl.sim_plan().camo_step.empty());
    for (const char f : nl.key_support()) EXPECT_EQ(f, 0);
    EXPECT_EQ(sim.run_all(pi), true_all);
}

TEST(PlanCache, CopiesStartColdAndRebuildCorrectly) {
    netlist::RandomSpec spec;
    spec.n_inputs = 8;
    spec.n_outputs = 4;
    spec.n_gates = 40;
    spec.seed = 9;
    const Netlist plain = netlist::random_circuit(spec);
    const camo::Protection prot = camo::apply_camouflage(
        plain, camo::select_gates(plain, 0.15, 2), camo::gshe16(), 2);
    ASSERT_FALSE(prot.netlist.camo_cells().empty());

    // Warm the original, then copy: the copy's lazily rebuilt plans must
    // produce the same words.
    (void)prot.netlist.sim_plan();
    (void)prot.netlist.frontier_plan();
    const Netlist copy = prot.netlist;
    std::mt19937_64 rng(3);
    const auto pi = random_words(rng, prot.netlist.inputs().size());
    EXPECT_EQ(Simulator(copy).run(pi), Simulator(prot.netlist).run(pi));
    EXPECT_EQ(copy.frontier_read_set(), prot.netlist.frontier_read_set());
    EXPECT_EQ(copy.key_support(), prot.netlist.key_support());
}

// ---- DIP support mode registry ----------------------------------------------

TEST(DipSupportRegistry, NamesRoundTrip) {
    EXPECT_EQ(attack::dip_support_mode_name(DipSupportMode::Full), "full");
    EXPECT_EQ(attack::dip_support_mode_name(DipSupportMode::Cone), "cone");
    EXPECT_EQ(attack::dip_support_mode_from_name("full"),
              DipSupportMode::Full);
    EXPECT_EQ(attack::dip_support_mode_from_name("cone"),
              DipSupportMode::Cone);
    EXPECT_FALSE(attack::dip_support_mode_from_name("bogus").has_value());
    EXPECT_EQ(attack::dip_support_mode_names(),
              (std::vector<std::string>{"full", "cone"}));
}

TEST(DipSupportRegistry, ResolveThrowsListingKnownModes) {
    EXPECT_THROW(attack::detail::resolve_dip_support_mode("bogus"),
                 std::invalid_argument);
    attack::AttackOptions opt;
    opt.dip_support = "narrow";
    EXPECT_THROW(attack::detail::resolve_dip_support_mode(opt),
                 std::invalid_argument);
    try {
        attack::detail::resolve_dip_support_mode("bogus");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("full"), std::string::npos);
        EXPECT_NE(what.find("cone"), std::string::npos);
    }
}

// ---- DIP support reduction: key-set equivalence -----------------------------

TEST(DipSupportCone, RecoversCorrectKeysWhereverFullDoes) {
    // Pinning non-support PIs must not change which key classes survive:
    // both modes end with a functionally correct key on every instance,
    // even though the DIP trajectories differ.
    std::size_t with_keys = 0;
    for (std::uint64_t seed = 1; seed <= 120; ++seed) {
        netlist::RandomSpec spec;
        spec.n_inputs = 10;
        spec.n_outputs = 6;
        spec.n_gates = 45;
        spec.seed = seed;
        const Netlist plain = netlist::random_circuit(spec);
        const camo::Protection prot = camo::apply_camouflage(
            plain, camo::select_gates(plain, 0.12, seed), camo::gshe16(),
            seed);
        if (!prot.netlist.camo_cells().empty()) ++with_keys;

        attack::AttackResult results[2];
        for (int m = 0; m < 2; ++m) {
            attack::ExactOracle oracle(prot.netlist);
            attack::AttackOptions opt;
            opt.dip_support = m == 0 ? "full" : "cone";
            results[m] = attack::sat_attack(prot.netlist, oracle, opt);
        }
        ASSERT_EQ(results[0].status, attack::AttackResult::Status::Success)
            << "seed " << seed;
        ASSERT_EQ(results[1].status, results[0].status) << "seed " << seed;
        EXPECT_EQ(results[0].key_error_rate, 0.0) << "seed " << seed;
        EXPECT_EQ(results[1].key_error_rate, 0.0) << "seed " << seed;
    }
    EXPECT_GT(with_keys, 90u);
}

// ---- DIP support reduction: campaign byte-identity --------------------------

Netlist tiny_circuit(const std::string& name) {
    netlist::RandomSpec spec;
    spec.n_inputs = 12;
    spec.n_outputs = 8;
    spec.n_gates = 60;
    spec.seed = name == "alpha" ? 11 : 22;
    return netlist::random_circuit(spec, name);
}

std::vector<JobSpec> cone_matrix() {
    DefenseConfig camo;
    camo.kind = "camo";
    camo.fraction = 0.12;
    camo.protect_seed = 0xC0DE;
    attack::AttackOptions opt;
    opt.dip_support = "cone";
    return CampaignRunner::cross_product({"alpha", "beta"}, {camo},
                                         {"sat", "appsat"}, {1, 2}, opt);
}

TEST(DipSupportCampaign, CsvByteIdenticalAcrossThreadCounts) {
    const std::vector<JobSpec> jobs = cone_matrix();
    std::vector<std::string> csvs;
    for (const int threads : {1, 8}) {
        CampaignOptions options;
        options.threads = threads;
        options.netlist_provider = tiny_circuit;
        csvs.push_back(
            engine::campaign_csv(CampaignRunner(options).run(jobs)));
    }
    EXPECT_EQ(csvs[0], csvs[1]);
    EXPECT_NE(csvs[0].find("success"), std::string::npos);
}

TEST(DipSupportCampaign, ResumeReplaysByteIdentically) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "gshe_sim_cone_resume";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string journal = (dir / "c.jsonl").string();

    const std::vector<JobSpec> jobs = cone_matrix();
    CampaignOptions first;
    first.threads = 4;
    first.netlist_provider = tiny_circuit;
    first.checkpoint_path = journal;
    first.resume_from_checkpoint = false;
    const std::string live =
        engine::campaign_csv(CampaignRunner(first).run(jobs));

    CampaignOptions second;
    second.threads = 4;
    second.netlist_provider = tiny_circuit;
    second.checkpoint_path = journal;
    const engine::CampaignResult resumed = CampaignRunner(second).run(jobs);
    EXPECT_EQ(resumed.resumed, jobs.size());
    EXPECT_EQ(engine::campaign_csv(resumed), live);
    // The dip-support column round-tripped through the journal.
    for (const engine::JobResult& j : resumed.jobs)
        EXPECT_EQ(j.dip_support, "cone") << j.circuit << "/" << j.attack;
    fs::remove_all(dir);
}

// ---- journal schema ---------------------------------------------------------

TEST(CheckpointDipSupport, LegacySpecJsonAndJobKeysAreUnchanged) {
    JobSpec legacy;
    legacy.circuit = "alpha";
    // The default spec must not mention dip_support at all: job keys are
    // fnv1a over this JSON, and pre-dip-support journals must keep resuming.
    EXPECT_EQ(engine::checkpoint::spec_json(legacy).find("dip_support"),
              std::string::npos);

    JobSpec cone = legacy;
    cone.attack_options.dip_support = "cone";
    const std::string json = engine::checkpoint::spec_json(cone);
    EXPECT_NE(json.find("\"dip_support\":\"cone\""), std::string::npos);
    // Different support mode => different job identity: a cone journal can
    // never satisfy a full campaign (or vice versa).
    EXPECT_NE(engine::checkpoint::job_key(1, 0, legacy),
              engine::checkpoint::job_key(1, 0, cone));
}

TEST(CheckpointDipSupport, FieldsRoundTripThroughARecord) {
    JobSpec spec;
    spec.circuit = "alpha";
    spec.attack_options.dip_support = "cone";
    engine::JobResult r;
    r.index = 2;
    r.circuit = "alpha";
    r.dip_support = "cone";
    r.result.status = attack::AttackResult::Status::Success;
    r.oracle_cache.lanes_deduped = 41;

    const std::string line =
        engine::checkpoint::encode_record(42, spec, r, {});
    const auto decoded = engine::checkpoint::decode_record(line);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->spec.attack_options.dip_support, "cone");
    EXPECT_EQ(decoded->result.dip_support, "cone");
    EXPECT_EQ(decoded->result.oracle_cache.lanes_deduped, 41u);
}

}  // namespace
}  // namespace gshe
