// Tests for assumption-guarded key extraction (attack/miter_detail.hpp):
// the ExtractionMode registry, the guarded difference constraint, DIP
// history dedup, and — the acceptance criteria — that in-place extraction
// admits exactly the keys fresh extraction admits (200 randomized
// camouflaged netlists plus the deterministic defense families), that an
// in-place AppSAT run grows the formula by agreements only (zero full
// re-encodes after the initial miter), and that inplace-mode campaign CSVs
// keep the byte-identity contract across thread counts and checkpoint
// resume against their own inplace baseline.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "attack/appsat.hpp"
#include "attack/miter_detail.hpp"
#include "attack/oracle.hpp"
#include "attack/sat_attack.hpp"
#include "camo/cell_library.hpp"
#include "camo/protect.hpp"
#include "engine/campaign.hpp"
#include "engine/checkpoint.hpp"
#include "engine/report.hpp"
#include "netlist/generator.hpp"
#include "netlist/netlist.hpp"
#include "sat/encoder.hpp"
#include "sat/solver.hpp"

namespace gshe {
namespace {

using attack::ExtractionMode;
using engine::CampaignOptions;
using engine::CampaignRunner;
using engine::DefenseConfig;
using engine::JobSpec;
using netlist::Netlist;
using sat::CircuitEncoder;
using sat::EncoderMode;
using sat::Lit;
using sat::SolveResult;

Netlist tiny_circuit(const std::string& name) {
    netlist::RandomSpec spec;
    spec.n_inputs = 12;
    spec.n_outputs = 8;
    spec.n_gates = 60;
    spec.seed = name == "alpha" ? 11 : 22;
    return netlist::random_circuit(spec, name);
}

// ---- mode registry ----------------------------------------------------------

TEST(ExtractionModeRegistry, NamesRoundTrip) {
    EXPECT_EQ(attack::extraction_mode_name(ExtractionMode::Fresh), "fresh");
    EXPECT_EQ(attack::extraction_mode_name(ExtractionMode::Inplace),
              "inplace");
    EXPECT_EQ(attack::extraction_mode_from_name("fresh"),
              ExtractionMode::Fresh);
    EXPECT_EQ(attack::extraction_mode_from_name("inplace"),
              ExtractionMode::Inplace);
    EXPECT_FALSE(attack::extraction_mode_from_name("bogus").has_value());
    EXPECT_EQ(attack::extraction_mode_names(),
              (std::vector<std::string>{"fresh", "inplace"}));
}

TEST(ExtractionModeRegistry, ResolveThrowsListingKnownModes) {
    EXPECT_THROW(attack::detail::resolve_extraction_mode("bogus"),
                 std::invalid_argument);
    attack::AttackOptions opt;
    opt.extraction = "lazy";
    EXPECT_THROW(attack::detail::resolve_extraction_mode(opt),
                 std::invalid_argument);
    try {
        attack::detail::resolve_extraction_mode("bogus");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("fresh"), std::string::npos);
        EXPECT_NE(what.find("inplace"), std::string::npos);
    }
}

// ---- history dedup ----------------------------------------------------------

TEST(History, SkipsExactDuplicatesButKeepsConflictingObservations) {
    attack::detail::History h;
    const std::vector<bool> x{true, false, true};
    const std::vector<bool> y0{false};
    const std::vector<bool> y1{true};

    EXPECT_TRUE(h.add(x, y0));
    EXPECT_EQ(h.size(), 1u);
    // Exact duplicate: skipped (AppSAT re-drawing a reinforcement pattern).
    EXPECT_TRUE(h.contains(x, y0));
    EXPECT_FALSE(h.add(x, y0));
    EXPECT_EQ(h.size(), 1u);
    // Same input, different output: a stochastic oracle answering
    // inconsistently is a real observation and must be kept.
    EXPECT_FALSE(h.contains(x, y1));
    EXPECT_TRUE(h.add(x, y1));
    EXPECT_EQ(h.size(), 2u);
    // A different input records normally.
    EXPECT_TRUE(h.add({false, false, false}, y0));
    EXPECT_EQ(h.size(), 3u);
}

// ---- guarded difference -----------------------------------------------------

/// The selector contract in miniature: two copies of the same plain circuit
/// on shared PIs can never differ, so the guarded difference is Unsat under
/// {guard} — and the extraction face of the solver, assuming {~guard}, must
/// still be satisfiable because no difference clause leaked in unguarded.
void check_guarded_difference(EncoderMode mode) {
    netlist::RandomSpec spec;
    spec.n_inputs = 8;
    spec.n_outputs = 5;
    spec.n_gates = 30;
    spec.seed = 515;
    const Netlist nl = netlist::random_circuit(spec);

    sat::Solver s;
    CircuitEncoder enc(s, mode);
    const sat::Encoding e1 = enc.encode(nl);
    const sat::Encoding e2 = enc.encode(nl, e1.pis);
    const Lit guard(s.new_var(), false);
    enc.add_difference(e1.outs, e2.outs, guard);

    EXPECT_EQ(s.solve({guard}), SolveResult::Unsat);
    EXPECT_EQ(s.solve({~guard}), SolveResult::Sat);
    // The guard is an assumption, not a decision the solver may flip: the
    // DIP face stays Unsat and the extraction face Sat on repeat solves.
    EXPECT_EQ(s.solve({guard}), SolveResult::Unsat);
    EXPECT_EQ(s.solve({~guard}), SolveResult::Sat);
}

TEST(GuardedDifference, ExtractionSolveDoesNotSeeTheDifferenceLegacy) {
    check_guarded_difference(EncoderMode::Legacy);
}

TEST(GuardedDifference, ExtractionSolveDoesNotSeeTheDifferenceCompact) {
    check_guarded_difference(EncoderMode::Compact);
}

TEST(GuardedDifference, GuardedMiterFindsTheSameDipsAsUnguarded) {
    // On a camouflaged miter (real keys), the guarded difference under
    // {guard} must behave exactly like the baked-in difference: satisfiable
    // while a DIP exists, with the same admissible key pairs.
    netlist::RandomSpec spec;
    spec.n_inputs = 8;
    spec.n_outputs = 5;
    spec.n_gates = 30;
    spec.seed = 616;
    const Netlist plain = netlist::random_circuit(spec);
    const camo::Protection prot = camo::apply_camouflage(
        plain, camo::select_gates(plain, 0.10, 9), camo::gshe16(), 9);
    ASSERT_FALSE(prot.netlist.camo_cells().empty());

    sat::Solver baked_s, guarded_s;
    CircuitEncoder baked(baked_s), guarded(guarded_s);
    const sat::Encoding b1 = baked.encode(prot.netlist);
    const sat::Encoding b2 = baked.encode(prot.netlist, b1.pis);
    baked.add_difference(b1.outs, b2.outs);
    const sat::Encoding g1 = guarded.encode(prot.netlist);
    const sat::Encoding g2 = guarded.encode(prot.netlist, g1.pis);
    const Lit guard(guarded_s.new_var(), false);
    guarded.add_difference(g1.outs, g2.outs, guard);

    EXPECT_EQ(guarded_s.solve({guard}), baked_s.solve());
}

// ---- randomized attack equivalence ------------------------------------------

TEST(InplaceAttack, TwoHundredRandomCamoNetlistsAgreeWithFresh) {
    std::size_t with_keys = 0;
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        netlist::RandomSpec spec;
        spec.n_inputs = 10;
        spec.n_outputs = 6;
        spec.n_gates = 45;
        spec.seed = seed;
        const Netlist plain = netlist::random_circuit(spec);
        const camo::Protection prot = camo::apply_camouflage(
            plain, camo::select_gates(plain, 0.12, seed), camo::gshe16(),
            seed);
        if (!prot.netlist.camo_cells().empty()) ++with_keys;

        attack::AttackResult results[2];
        for (int m = 0; m < 2; ++m) {
            attack::ExactOracle oracle(prot.netlist);
            attack::AttackOptions opt;
            opt.extraction = m == 0 ? "fresh" : "inplace";
            results[m] = attack::sat_attack(prot.netlist, oracle, opt);
        }
        ASSERT_EQ(results[0].status, attack::AttackResult::Status::Success)
            << "seed " << seed;
        ASSERT_EQ(results[1].status, results[0].status) << "seed " << seed;
        EXPECT_EQ(results[0].key_error_rate, 0.0) << "seed " << seed;
        EXPECT_EQ(results[1].key_error_rate, 0.0) << "seed " << seed;
        EXPECT_EQ(results[0].inplace_extractions, 0u) << "seed " << seed;
        EXPECT_GE(results[1].inplace_extractions, 1u) << "seed " << seed;
    }
    // The sweep exercised real key recovery, not 200 empty defenses.
    EXPECT_GT(with_keys, 150u);
}

TEST(InplaceAttack, DeterministicDefenseFamiliesRecoverKeys) {
    DefenseConfig camo;
    camo.kind = "camo";
    camo.fraction = 0.12;
    DefenseConfig sarlock;
    sarlock.kind = "sarlock";
    sarlock.sarlock_bits = 4;

    engine::CampaignResult results[2];
    for (int m = 0; m < 2; ++m) {
        attack::AttackOptions opt;
        opt.extraction = m == 0 ? "fresh" : "inplace";
        const std::vector<JobSpec> jobs = CampaignRunner::cross_product(
            {"alpha", "beta"}, {camo, sarlock},
            {"sat", "double_dip", "appsat"}, {1}, opt);
        CampaignOptions options;
        options.threads = 1;
        options.netlist_provider = tiny_circuit;
        results[m] = CampaignRunner(options).run(jobs);
    }
    ASSERT_EQ(results[0].jobs.size(), results[1].jobs.size());
    for (std::size_t i = 0; i < results[0].jobs.size(); ++i) {
        const engine::JobResult& f = results[0].jobs[i];
        const engine::JobResult& p = results[1].jobs[i];
        ASSERT_TRUE(f.error.empty() && p.error.empty())
            << f.circuit << "/" << f.defense << "/" << f.attack;
        EXPECT_EQ(p.result.status, f.result.status)
            << f.circuit << "/" << f.defense << "/" << f.attack;
        EXPECT_EQ(f.result.key_error_rate, 0.0)
            << f.circuit << "/" << f.defense << "/" << f.attack;
        EXPECT_EQ(p.result.key_error_rate, 0.0)
            << p.circuit << "/" << p.defense << "/" << p.attack;
        EXPECT_EQ(f.extraction, "fresh");
        EXPECT_EQ(p.extraction, "inplace");
        EXPECT_EQ(f.result.inplace_extractions, 0u);
        EXPECT_GE(p.result.inplace_extractions, 1u);
    }
}

// ---- agreement-only growth --------------------------------------------------

TEST(InplaceAttack, AppSatGrowsTheFormulaByAgreementsOnly) {
    // The tentpole's whole point: under "inplace" an AppSAT run — the
    // settlement-heavy workload — must never re-encode the circuit after
    // the initial miter. Encoder-visible variables beyond the agreement
    // constraints must equal a bare two-copy miter encode, bit for bit,
    // while "fresh" pays at least one extra full re-encode per extraction.
    netlist::RandomSpec spec;
    spec.n_inputs = 12;
    spec.n_outputs = 8;
    spec.n_gates = 60;
    spec.seed = 33;
    const Netlist plain = netlist::random_circuit(spec);
    const camo::Protection prot = camo::apply_camouflage(
        plain, camo::select_gates(plain, 0.12, 3), camo::gshe16(), 3);
    ASSERT_FALSE(prot.netlist.camo_cells().empty());

    // The whole inplace preamble: two-copy miter plus the guarded
    // difference ladder. Everything the attack encodes beyond this must be
    // agreement CNF.
    const auto bare_miter = [&](EncoderMode mode) {
        sat::Solver s;
        CircuitEncoder enc(s, mode);
        const sat::Encoding e1 = enc.encode(prot.netlist);
        const sat::Encoding e2 = enc.encode(prot.netlist, e1.pis);
        enc.add_difference(e1.outs, e2.outs, Lit(s.new_var(), false));
        return enc.stats();
    };

    for (const std::string encoder : {"legacy", "compact"}) {
        attack::AttackResult results[2];
        for (int m = 0; m < 2; ++m) {
            attack::ExactOracle oracle(prot.netlist);
            attack::AppSatOptions opt;
            opt.base.encoder = encoder;
            opt.base.extraction = m == 0 ? "fresh" : "inplace";
            results[m] = attack::appsat_attack(prot.netlist, oracle, opt);
        }
        const attack::AttackResult& fresh = results[0];
        const attack::AttackResult& inplace = results[1];
        ASSERT_EQ(inplace.status, attack::AttackResult::Status::Success)
            << encoder;
        ASSERT_EQ(fresh.status, inplace.status) << encoder;
        EXPECT_GE(inplace.inplace_extractions, 1u) << encoder;
        EXPECT_GT(inplace.reencode_vars_avoided, 0u) << encoder;
        EXPECT_GT(inplace.reencode_clauses_avoided, 0u) << encoder;

        const sat::EncoderStats bare =
            bare_miter(attack::detail::resolve_encoder_mode(encoder));
        const auto& is = inplace.encoder_stats;
        const auto& fs = fresh.encoder_stats;
        // Zero full re-encodes after the initial miter: agreement-only
        // growth, down to the exact variable and clause counts.
        EXPECT_EQ(is.vars - is.agreement_vars, bare.vars) << encoder;
        EXPECT_EQ(is.clauses - is.agreement_clauses, bare.clauses) << encoder;
        // Fresh paid one full re-encode per extraction on top of its miter.
        EXPECT_GT(fs.vars - fs.agreement_vars, bare.vars) << encoder;
    }
}

// ---- campaign byte-identity in inplace mode ---------------------------------

std::vector<JobSpec> inplace_matrix() {
    DefenseConfig camo;
    camo.kind = "camo";
    camo.fraction = 0.12;
    camo.protect_seed = 0xC0DE;
    attack::AttackOptions opt;
    opt.extraction = "inplace";
    return CampaignRunner::cross_product({"alpha", "beta"}, {camo},
                                         {"sat", "appsat"}, {1, 2}, opt);
}

TEST(InplaceCampaign, CsvByteIdenticalAcrossThreadCounts) {
    const std::vector<JobSpec> jobs = inplace_matrix();
    std::vector<std::string> csvs;
    for (const int threads : {1, 8}) {
        CampaignOptions options;
        options.threads = threads;
        options.netlist_provider = tiny_circuit;
        csvs.push_back(
            engine::campaign_csv(CampaignRunner(options).run(jobs)));
    }
    EXPECT_EQ(csvs[0], csvs[1]);
    EXPECT_NE(csvs[0].find("success"), std::string::npos);
}

TEST(InplaceCampaign, ResumeReplaysByteIdentically) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "gshe_extraction_resume";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string journal = (dir / "c.jsonl").string();

    const std::vector<JobSpec> jobs = inplace_matrix();
    CampaignOptions first;
    first.threads = 4;
    first.netlist_provider = tiny_circuit;
    first.checkpoint_path = journal;
    first.resume_from_checkpoint = false;
    const std::string live =
        engine::campaign_csv(CampaignRunner(first).run(jobs));

    CampaignOptions second;
    second.threads = 4;
    second.netlist_provider = tiny_circuit;
    second.checkpoint_path = journal;
    const engine::CampaignResult resumed = CampaignRunner(second).run(jobs);
    EXPECT_EQ(resumed.resumed, jobs.size());
    EXPECT_EQ(engine::campaign_csv(resumed), live);
    // The extraction column and its counters round-tripped through the
    // journal.
    for (const engine::JobResult& j : resumed.jobs) {
        EXPECT_EQ(j.extraction, "inplace");
        EXPECT_GE(j.result.inplace_extractions, 1u)
            << j.circuit << "/" << j.attack;
        EXPECT_GT(j.result.reencode_vars_avoided, 0u)
            << j.circuit << "/" << j.attack;
    }
    fs::remove_all(dir);
}

// ---- journal schema ---------------------------------------------------------

TEST(CheckpointExtraction, CounterFieldsRoundTripThroughARecord) {
    JobSpec spec;
    spec.circuit = "alpha";
    spec.attack_options.extraction = "inplace";
    engine::JobResult r;
    r.index = 2;
    r.circuit = "alpha";
    r.extraction = "inplace";
    r.result.status = attack::AttackResult::Status::Success;
    r.result.inplace_extractions = 7;
    r.result.reencode_vars_avoided = 1234;
    r.result.reencode_clauses_avoided = 5678;

    const std::string line =
        engine::checkpoint::encode_record(42, spec, r, {});
    const auto decoded = engine::checkpoint::decode_record(line);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->spec.attack_options.extraction, "inplace");
    const engine::JobResult& d = decoded->result;
    EXPECT_EQ(d.extraction, "inplace");
    EXPECT_EQ(d.result.inplace_extractions, 7u);
    EXPECT_EQ(d.result.reencode_vars_avoided, 1234u);
    EXPECT_EQ(d.result.reencode_clauses_avoided, 5678u);
}

TEST(CheckpointExtraction, LegacySpecJsonAndJobKeysAreUnchanged) {
    JobSpec legacy;
    legacy.circuit = "alpha";
    // The default spec must not mention the extraction mode at all: job
    // keys are fnv1a over this JSON, and pre-extraction journals must keep
    // resuming.
    EXPECT_EQ(engine::checkpoint::spec_json(legacy).find("extraction"),
              std::string::npos);

    JobSpec inplace = legacy;
    inplace.attack_options.extraction = "inplace";
    const std::string json = engine::checkpoint::spec_json(inplace);
    EXPECT_NE(json.find("\"extraction\":\"inplace\""), std::string::npos);
    // Different extraction => different job identity: an inplace journal
    // can never satisfy a fresh campaign (or vice versa).
    EXPECT_NE(engine::checkpoint::job_key(1, 0, legacy),
              engine::checkpoint::job_key(1, 0, inplace));
}

}  // namespace
}  // namespace gshe
