// run_campaign — the campaign engine's CLI: plans a
// {circuit x defense x attack x seed} job matrix, executes this process's
// shard of it across a thread pool, and writes structured reports.
//
// The default matrix is 2 circuits x 3 defenses x 2 attacks x 2 seeds =
// 24 jobs. Attacks are budgeted with the deterministic conflict cap
// (--max-conflicts), not the wall clock, so the CSV report is byte-identical
// for any --threads value:
//
//   run_campaign --threads=1 --csv=a.csv
//   run_campaign --threads=8 --csv=b.csv
//   cmp a.csv b.csv          # identical
//
// Long campaigns are interruptible: --checkpoint journals every finished
// job, and --resume continues a killed run from the journal with the final
// CSV byte-identical to an uninterrupted campaign:
//
//   run_campaign --checkpoint=c.jsonl --csv=out.csv     # SIGKILL mid-run...
//   run_campaign --checkpoint=c.jsonl --resume --csv=out.csv
//
// And shardable across processes/machines: --shard=i/N executes only the
// plan indices j with j % N == i (preview the partition with --dry-run),
// each shard journaling to its own file; merge_campaign recombines the
// journals into the CSV an unsharded run would have produced:
//
//   run_campaign --shard=0/2 --checkpoint=s0.jsonl &
//   run_campaign --shard=1/2 --checkpoint=s1.jsonl &
//   wait && merge_campaign --csv=out.csv s0.jsonl s1.jsonl
//
// Examples:
//   run_campaign                                # default matrix, CSV to stdout
//   run_campaign --threads=0 --json=full.json   # all cores, full JSON record
//   run_campaign --circuits=ex1010 --defenses=stochastic --accuracy=0.9
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "attack/attack.hpp"
#include "common/parse.hpp"
#include "common/report.hpp"
#include "sat/backend.hpp"
#include "sat/encoder.hpp"
#include "engine/campaign.hpp"
#include "engine/checkpoint.hpp"
#include "engine/defense.hpp"
#include "engine/report.hpp"
#include "netlist/corpus.hpp"

using namespace gshe;
using namespace gshe::engine;

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t end = s.find(sep, start);
        if (end == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

struct Cli {
    int threads = 1;
    std::vector<std::string> circuits = {"ex1010", "c7552"};
    std::vector<std::string> defenses = {"camo", "sarlock", "stochastic"};
    std::vector<std::string> attacks = {"sat", "double_dip"};
    std::string solver = "internal";
    std::string encoder = "legacy";
    std::string extraction = "fresh";
    std::string dip_support = "full";
    int portfolio_width = 4;
    bool portfolio_race = false;
    std::vector<std::string> inprocess;  // of: viv, xor, bve
    std::uint64_t inprocess_interval = 8192;
    int n_seeds = 2;
    double fraction = 0.05;
    std::string library = "gshe16";
    int sarlock_bits = 4;
    double accuracy = 0.95;
    std::uint64_t max_conflicts = 50000;
    double timeout_seconds = 3600.0;
    std::uint64_t campaign_seed = 0x6a0b5eed;
    std::optional<std::uint64_t> protect_seed;
    OracleCacheMode oracle_cache = OracleCacheMode::Auto;
    ShardSpec shard;
    std::string csv_path = "-";
    std::string json_path;
    std::string checkpoint_path;
    bool resume = false;
    bool dry_run = false;
    bool timing = false;
    bool quiet = false;
};

void usage() {
    std::puts(
        "usage: run_campaign [--key=value ...]\n"
        "  --threads=N        worker threads (default 1; 0 = all cores)\n"
        "  --circuits=a,b     Table III corpus circuits (default ex1010,c7552)\n"
        "  --defenses=k,...   defense kinds (default camo,sarlock,stochastic;\n"
        "                     also: delay_aware, dynamic)\n"
        "  --attacks=a,...    attacks (default sat,double_dip; also: appsat)\n"
        "  --solver=NAME      SAT backend for every attack (default internal;\n"
        "                     'portfolio' races K diversified internal CDCL\n"
        "                     workers per solve; 'dimacs' shells out to the\n"
        "                     binary named by GSHE_DIMACS_SOLVER)\n"
        "  --encoder=NAME     CNF encoder for every attack (default legacy;\n"
        "                     'compact' folds constants, hashes shared\n"
        "                     structure and cone-reduces DIP agreements —\n"
        "                     deterministic, but a different trajectory than\n"
        "                     legacy, so compare CSVs within one mode)\n"
        "  --extraction=NAME  key-extraction mode for every attack (default\n"
        "                     fresh = per-extraction solver + full-history\n"
        "                     replay; 'inplace' extracts on the live miter\n"
        "                     solver under an assumption-guarded difference —\n"
        "                     deterministic, but a different trajectory than\n"
        "                     fresh, so compare CSVs within one mode)\n"
        "  --dip-support=NAME DIP support mode for the single-DIP loop and\n"
        "                     AppSAT (default full = the historical miter over\n"
        "                     every primary input; 'cone' pins inputs outside\n"
        "                     the key cone's transitive fanin to constants —\n"
        "                     deterministic, but a different trajectory than\n"
        "                     full, so compare CSVs within one mode. Double\n"
        "                     DIP's 2-DIP phase keeps the full input space)\n"
        "  --portfolio-width=K  portfolio worker count (default 4; width 1\n"
        "                     behaves bit-for-bit like --solver=internal)\n"
        "  --portfolio-race   wall-clock race tier: first decisive worker\n"
        "                     cancels the rest and workers exchange learned\n"
        "                     clauses (declared non-deterministic; the\n"
        "                     budgeted default keeps CSVs byte-identical)\n"
        "  --inprocess=p,...  internal-solver inprocessing passes: viv\n"
        "                     (clause vivification), xor (XOR recovery +\n"
        "                     GF(2) elimination), bve (bounded variable\n"
        "                     elimination). Default: none. Any fixed set\n"
        "                     keeps campaign CSVs byte-identical across\n"
        "                     threads/shards/resume\n"
        "  --inprocess-interval=N  conflicts between inprocessing rounds\n"
        "                     (default 8192)\n"
        "  --seeds=N          replications with seeds 1..N (default 2)\n"
        "  --fraction=F       protected gate fraction (default 0.05)\n"
        "  --library=NAME     camouflage cell library (default gshe16)\n"
        "  --sarlock-bits=M   SARLock protected bits (default 4)\n"
        "  --accuracy=A       stochastic device accuracy (default 0.95)\n"
        "  --max-conflicts=N  deterministic solver budget (default 50000)\n"
        "  --timeout=S        wall-clock safety timeout per attack (default 3600)\n"
        "  --campaign-seed=N  campaign-level seed\n"
        "  --protect-seed=N   pin gate selection/camouflage application to one\n"
        "                     seed across all jobs (the Table IV methodology:\n"
        "                     'gates are randomly selected once ... and then\n"
        "                     reapplied across all techniques'). Jobs that then\n"
        "                     attack identical defense instances share one\n"
        "                     build and one oracle query memo\n"
        "  --oracle-cache=M   query-memo policy: on | off | auto (default\n"
        "                     auto = memo only defense-instance groups with\n"
        "                     more than one job). The deterministic CSV is\n"
        "                     byte-identical for every mode; only evaluation\n"
        "                     cost differs\n"
        "  --shard=i/N        execute only plan indices j with j %% N == i\n"
        "                     (one process of an N-way sharded campaign;\n"
        "                     combine the shard journals with merge_campaign)\n"
        "  --dry-run          print the planned job table (index, circuit,\n"
        "                     defense, attack, seed, shard owner) and exit —\n"
        "                     the operator's sharding preview\n"
        "  --csv=PATH         CSV report destination ('-' = stdout, default)\n"
        "  --json=PATH        full JSON report (includes timing; not\n"
        "                     byte-reproducible)\n"
        "  --checkpoint=PATH  journal each finished job to PATH (JSONL,\n"
        "                     atomic write-then-rename) so an interrupted\n"
        "                     campaign can be resumed; one journal per shard\n"
        "  --resume           load PATH, skip already-completed jobs, and\n"
        "                     merge their cached results; the final CSV is\n"
        "                     byte-identical to an uninterrupted run\n"
        "  --timing           add wall-clock columns to the CSV (breaks the\n"
        "                     byte-identical guarantee)\n"
        "  --quiet            suppress per-job progress on stderr\n"
        "  --list             list circuits/defenses/attacks and exit");
}

void list_choices() {
    std::printf("circuits (Table III corpus):\n");
    for (const auto& e : netlist::corpus_entries())
        std::printf("  %-14s %s\n", e.name.c_str(), e.suite.c_str());
    std::printf("defenses:\n");
    for (const auto& k : DefenseFactory::kinds())
        std::printf("  %s\n", k.c_str());
    std::printf("attacks:\n");
    for (const auto& name : attack::attack_names()) {
        const attack::Attack& a = attack::attack_by_name(name);
        std::printf("  %-11s %s\n", name.c_str(), a.label().c_str());
    }
    std::printf("solver backends:\n");
    for (const auto& name : sat::backend_names()) {
        const sat::BackendFactory& b = sat::backend_by_name(name);
        std::printf("  %-11s %s%s\n", name.c_str(), b.label().c_str(),
                    b.available() ? "" : " [unavailable]");
    }
    std::printf("encoders:\n");
    for (const auto& name : sat::encoder_mode_names())
        std::printf("  %s\n", name.c_str());
    std::printf("extractions:\n");
    for (const auto& name : attack::extraction_mode_names())
        std::printf("  %s\n", name.c_str());
    std::printf("dip-supports:\n");
    for (const auto& name : attack::dip_support_mode_names())
        std::printf("  %s\n", name.c_str());
}

// ---- strict flag parsing ----------------------------------------------------
// Every numeric flag goes through parse_u64/parse_i64/parse_double: a value
// the helpers reject (or one outside the flag's documented range) is a
// usage error naming the flag and the offending text — never a silent 0
// the way atoi("abc") was.

[[noreturn]] void flag_error(const char* flag, const std::string& value,
                             const char* expected) {
    std::fprintf(stderr, "run_campaign: invalid value for %s: '%s' (%s)\n",
                 flag, value.c_str(), expected);
    std::exit(2);
}

int int_flag(const char* flag, const std::string& value, int min_value,
             int max_value) {
    const auto parsed = parse_i64(value);
    if (!parsed || *parsed < min_value || *parsed > max_value)
        flag_error(flag, value,
                   ("expected an integer in [" + std::to_string(min_value) +
                    ", " + std::to_string(max_value) + "]")
                       .c_str());
    return static_cast<int>(*parsed);
}

std::uint64_t u64_flag(const char* flag, const std::string& value) {
    const auto parsed = parse_u64(value);
    if (!parsed) flag_error(flag, value, "expected an unsigned integer");
    return *parsed;
}

double double_flag(const char* flag, const std::string& value,
                   double min_value, double max_value) {
    const auto parsed = parse_double(value);
    if (!parsed || *parsed < min_value || *parsed > max_value)
        flag_error(flag, value,
                   ("expected a number in [" + std::to_string(min_value) +
                    ", " + std::to_string(max_value) + "]")
                       .c_str());
    return *parsed;
}

OracleCacheMode cache_flag(const std::string& value) {
    if (value == "on") return OracleCacheMode::On;
    if (value == "off") return OracleCacheMode::Off;
    if (value == "auto") return OracleCacheMode::Auto;
    flag_error("--oracle-cache", value, "expected on, off or auto");
}

ShardSpec shard_flag(const std::string& value) {
    const std::size_t slash = value.find('/');
    const auto index = slash == std::string::npos
                           ? std::nullopt
                           : parse_u64(value.substr(0, slash));
    const auto total = slash == std::string::npos
                           ? std::nullopt
                           : parse_u64(value.substr(slash + 1));
    if (!index || !total || *total == 0 || *index >= *total)
        flag_error("--shard", value,
                   "expected i/N with 0 <= i < N, e.g. --shard=0/4");
    return ShardSpec{static_cast<std::size_t>(*index),
                     static_cast<std::size_t>(*total)};
}

bool parse(Cli& cli, int argc, char** argv, bool& exit_ok) {
    exit_ok = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto starts = [&](const char* p) {
            return arg.rfind(p, 0) == 0;
        };
        const auto val = [&] { return arg.substr(arg.find('=') + 1); };
        if (arg == "--help" || arg == "-h") {
            usage();
            exit_ok = true;
            return true;
        }
        if (arg == "--list") {
            list_choices();
            exit_ok = true;
            return true;
        }
        if (arg == "--timing") { cli.timing = true; continue; }
        if (arg == "--quiet") { cli.quiet = true; continue; }
        if (arg == "--resume") { cli.resume = true; continue; }
        if (arg == "--dry-run") { cli.dry_run = true; continue; }
        if (arg == "--portfolio-race") { cli.portfolio_race = true; continue; }
        if (arg.find('=') == std::string::npos) return false;
        if (starts("--threads=")) cli.threads = int_flag("--threads", val(), 0, 4096);
        else if (starts("--circuits=")) cli.circuits = split(val(), ',');
        else if (starts("--defenses=")) cli.defenses = split(val(), ',');
        else if (starts("--attacks=")) cli.attacks = split(val(), ',');
        else if (starts("--solver=")) cli.solver = val();
        else if (starts("--encoder=")) cli.encoder = val();
        else if (starts("--extraction=")) cli.extraction = val();
        else if (starts("--dip-support=")) cli.dip_support = val();
        else if (starts("--portfolio-width=")) cli.portfolio_width = int_flag("--portfolio-width", val(), 1, 64);
        else if (starts("--inprocess=")) cli.inprocess = split(val(), ',');
        else if (starts("--inprocess-interval=")) cli.inprocess_interval = u64_flag("--inprocess-interval", val());
        else if (starts("--seeds=")) cli.n_seeds = int_flag("--seeds", val(), 1, 1 << 20);
        else if (starts("--fraction=")) cli.fraction = double_flag("--fraction", val(), 0.0, 1.0);
        else if (starts("--library=")) cli.library = val();
        else if (starts("--sarlock-bits=")) cli.sarlock_bits = int_flag("--sarlock-bits", val(), 1, 64);
        else if (starts("--accuracy=")) cli.accuracy = double_flag("--accuracy", val(), 0.0, 1.0);
        else if (starts("--max-conflicts=")) cli.max_conflicts = u64_flag("--max-conflicts", val());
        else if (starts("--timeout=")) cli.timeout_seconds = double_flag("--timeout", val(), 0.0, 1e9);
        else if (starts("--campaign-seed=")) cli.campaign_seed = u64_flag("--campaign-seed", val());
        else if (starts("--protect-seed=")) cli.protect_seed = u64_flag("--protect-seed", val());
        else if (starts("--oracle-cache=")) cli.oracle_cache = cache_flag(val());
        else if (starts("--shard=")) cli.shard = shard_flag(val());
        else if (starts("--csv=")) cli.csv_path = val();
        else if (starts("--json=")) cli.json_path = val();
        else if (starts("--checkpoint=")) cli.checkpoint_path = val();
        else return false;
    }
    return true;
}

/// --dry-run: the plan as the operator will shard it — one row per job with
/// the shard that owns it and the defense-instance group whose build (and
/// oracle query memo) it will share, '*' marking the rows this invocation
/// would run.
void print_plan(const JobPlan& plan, const ShardSpec& shard) {
    std::printf("%5s  %-10s %-28s %-11s %5s  %-6s %-5s\n", "index", "circuit",
                "defense", "attack", "seed", "shard", "group");
    for (const auto& job : plan.jobs) {
        const ShardSpec owner{job.index % shard.total, shard.total};
        std::printf("%5zu  %-10s %-28s %-11s %5llu  %-6s %-5zu%s\n", job.index,
                    job.spec.circuit.c_str(), job.spec.defense.label().c_str(),
                    job.spec.attack.c_str(),
                    static_cast<unsigned long long>(job.spec.seed),
                    owner.label().c_str(), job.group,
                    shard.contains(job.index) ? " *" : "");
    }
    // The sharing preview: which jobs will attack one shared defense
    // instance (and hence feed one query memo). Singleton groups are
    // summarized, not listed — with per-job build seeds nothing shares.
    std::size_t shared_groups = 0;
    for (const auto& g : plan.groups)
        if (g.members.size() > 1) ++shared_groups;
    std::printf("defense-instance groups: %zu (%zu shared, %zu private)\n",
                plan.groups.size(), shared_groups,
                plan.groups.size() - shared_groups);
    for (const auto& g : plan.groups) {
        if (g.members.size() < 2) continue;
        std::string members;
        for (const std::size_t m : g.members) {
            if (!members.empty()) members += ',';
            members += std::to_string(m);
        }
        std::printf("  group %-5zu %-28s jobs %s\n", g.id,
                    plan.jobs[g.id].spec.defense.label().c_str(),
                    members.c_str());
    }
    std::printf("plan: %zu jobs, fingerprint 0x%016llx; shard %s runs %zu\n",
                plan.size(),
                static_cast<unsigned long long>(plan.fingerprint),
                shard.label().c_str(), plan.shard_indices(shard).size());
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli;
    bool exit_ok = false;
    if (!parse(cli, argc, argv, exit_ok)) {
        usage();
        return 2;
    }
    if (exit_ok) return 0;
    if (cli.resume && cli.checkpoint_path.empty()) {
        std::fprintf(stderr, "--resume requires --checkpoint=PATH\n");
        return 2;
    }

    // Build the job matrix.
    std::vector<DefenseConfig> defenses;
    for (const auto& kind : cli.defenses) {
        DefenseConfig d;
        d.kind = kind;
        d.library = cli.library;
        d.fraction = cli.fraction;
        d.sarlock_bits = cli.sarlock_bits;
        d.accuracy = cli.accuracy;
        d.protect_seed = cli.protect_seed;
        defenses.push_back(std::move(d));
    }
    std::vector<std::uint64_t> seeds;
    for (int s = 1; s <= cli.n_seeds; ++s)
        seeds.push_back(static_cast<std::uint64_t>(s));

    attack::AttackOptions attack_options;
    attack_options.timeout_seconds = cli.timeout_seconds;
    attack_options.max_conflicts = cli.max_conflicts;
    attack_options.solver_backend = cli.solver;
    attack_options.encoder = cli.encoder;
    attack_options.extraction = cli.extraction;
    attack_options.dip_support = cli.dip_support;
    attack_options.solver.portfolio_width = cli.portfolio_width;
    attack_options.solver.portfolio_race = cli.portfolio_race;
    attack_options.solver.inprocess_interval = cli.inprocess_interval;
    for (const auto& pass : cli.inprocess) {
        if (pass == "viv") attack_options.solver.use_vivification = true;
        else if (pass == "xor") attack_options.solver.use_xor_recovery = true;
        else if (pass == "bve") attack_options.solver.use_bve = true;
        else if (!pass.empty()) {
            std::fprintf(stderr,
                         "--inprocess: unknown pass '%s' (viv, xor, bve)\n",
                         pass.c_str());
            return 2;
        }
    }
    try {
        // Validate up front so a typo fails before any job runs; the error
        // lists every registered backend.
        const sat::BackendFactory& backend = sat::backend_by_name(cli.solver);
        if (!backend.available()) {
            std::fprintf(stderr,
                         "solver backend '%s' is not available: %s\n",
                         cli.solver.c_str(), backend.label().c_str());
            return 2;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    if (!sat::encoder_mode_from_name(cli.encoder)) {
        std::string known;
        for (const auto& name : sat::encoder_mode_names()) known += " " + name;
        std::fprintf(stderr, "unknown encoder '%s'; known encoders:%s\n",
                     cli.encoder.c_str(), known.c_str());
        return 2;
    }
    if (!attack::extraction_mode_from_name(cli.extraction)) {
        std::string known;
        for (const auto& name : attack::extraction_mode_names())
            known += " " + name;
        std::fprintf(stderr, "unknown extraction '%s'; known extractions:%s\n",
                     cli.extraction.c_str(), known.c_str());
        return 2;
    }
    if (!attack::dip_support_mode_from_name(cli.dip_support)) {
        std::string known;
        for (const auto& name : attack::dip_support_mode_names())
            known += " " + name;
        std::fprintf(stderr, "unknown dip-support '%s'; known dip-supports:%s\n",
                     cli.dip_support.c_str(), known.c_str());
        return 2;
    }

    const std::vector<JobSpec> jobs = CampaignRunner::cross_product(
        cli.circuits, defenses, cli.attacks, seeds, attack_options);
    if (jobs.empty()) {
        std::fprintf(stderr, "empty job matrix\n");
        return 2;
    }

    const JobPlan plan = plan_jobs(jobs, cli.campaign_seed);
    if (cli.dry_run) {
        print_plan(plan, cli.shard);
        return 0;
    }
    // Progress denominator = jobs that will actually execute: on a resume,
    // key-matched error-free journal records satisfy their slots without
    // firing the progress hook, so count them out up front (same matching
    // rule the runner applies).
    std::size_t fresh_jobs = 0;
    if (!cli.quiet) {  // only the progress hook consumes the count
        std::unordered_set<std::uint64_t> completed;
        if (cli.resume)
            for (const auto& record :
                 engine::checkpoint::load_journal(cli.checkpoint_path))
                if (record.result.error.empty())
                    completed.insert(record.key);
        for (const std::size_t i : plan.shard_indices(cli.shard))
            if (!completed.count(plan.jobs[i].key)) ++fresh_jobs;
    }

    CampaignOptions options;
    options.threads = cli.threads;
    options.campaign_seed = cli.campaign_seed;
    options.shard = cli.shard;
    options.checkpoint_path = cli.checkpoint_path;
    options.resume_from_checkpoint = cli.resume;
    options.oracle_cache = cli.oracle_cache;
    std::size_t done = 0;  // progress counter; referenced only during run()
    if (!cli.quiet) {
        options.on_job_done = [&](const JobResult& j) {
            std::fprintf(stderr, "[%3zu/%zu] #%-3zu %-8s %-28s %-10s seed=%llu  %s\n",
                         ++done, fresh_jobs, j.index, j.circuit.c_str(),
                         j.defense.c_str(), j.attack.c_str(),
                         static_cast<unsigned long long>(j.spec_seed),
                         j.error.empty()
                             ? attack::AttackResult::status_name(j.result.status)
                                   .c_str()
                             : j.error.c_str());
        };
    }

    const CampaignRunner runner(options);
    CampaignResult result;
    try {
        result = runner.run(plan);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "campaign failed: %s\n", e.what());
        return 1;
    }

    const std::string csv = campaign_csv(result, cli.timing);
    try {
        if (cli.csv_path == "-") {
            std::fputs(csv.c_str(), stdout);
        } else if (!cli.csv_path.empty()) {
            write_text_file(cli.csv_path, csv);
        }
        if (!cli.json_path.empty())
            write_text_file(cli.json_path, campaign_json(result));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "report write failed: %s\n", e.what());
        return 1;
    }

    std::fprintf(stderr, "%s\n", campaign_summary(result).c_str());
    return result.errored() == 0 ? 0 : 1;
}
