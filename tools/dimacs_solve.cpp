// dimacs_solve — a MiniSat/CryptoMiniSat-compatible command-line front-end
// over the in-tree CDCL solver: reads a DIMACS CNF file, prints SAT-
// competition output ("s SATISFIABLE" + "v" model records + "c" stat
// lines) and exits 10/20/0 for SAT/UNSAT/unknown.
//
// Two jobs:
//  * a standalone DIMACS solver for ad-hoc debugging of exported miters;
//  * the self-hosted test vehicle for the "dimacs" subprocess backend —
//    point GSHE_DIMACS_SOLVER at this binary and the backend's attack
//    tests run end to end with no external solver installed:
//
//      GSHE_DIMACS_SOLVER=$PWD/build/dimacs_solve ctest -R 'sat|attack'
//
// Usage: dimacs_solve [--max-seconds=S] [--max-conflicts=N] FILE.cnf
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"

using namespace gshe;

int main(int argc, char** argv) {
    std::string path;
    sat::SolverBudget budget;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--max-seconds=", 0) == 0)
            budget.max_seconds = std::atof(arg.c_str() + 14);
        else if (arg.rfind("--max-conflicts=", 0) == 0)
            budget.max_conflicts = std::strtoull(arg.c_str() + 16, nullptr, 10);
        else if (arg == "--help" || arg == "-h" || arg[0] == '-') {
            std::fprintf(stderr,
                         "usage: dimacs_solve [--max-seconds=S] "
                         "[--max-conflicts=N] FILE.cnf\n");
            return arg == "--help" || arg == "-h" ? 0 : 2;
        } else {
            path = arg;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr, "dimacs_solve: no input file\n");
        return 2;
    }

    sat::CnfFormula formula;
    try {
        std::ifstream f(path, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "dimacs_solve: cannot open %s\n", path.c_str());
            return 2;
        }
        formula = sat::read_dimacs(f);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "dimacs_solve: %s\n", e.what());
        return 2;
    }

    std::printf("c gshe internal CDCL solver (DIMACS front-end)\n");
    std::printf("c vars: %d  clauses: %zu\n", formula.num_vars,
                formula.clauses.size());
    sat::Solver solver;
    solver.set_budget(budget);
    const bool loaded = sat::load_into_solver(formula, solver);
    const sat::SolveResult result =
        loaded ? solver.solve() : sat::SolveResult::Unsat;

    const sat::SolverStats& stats = solver.stats();
    std::printf("c conflicts    : %llu\n",
                static_cast<unsigned long long>(stats.conflicts));
    std::printf("c decisions    : %llu\n",
                static_cast<unsigned long long>(stats.decisions));
    std::printf("c propagations : %llu\n",
                static_cast<unsigned long long>(stats.propagations));
    std::printf("c restarts     : %llu\n",
                static_cast<unsigned long long>(stats.restarts));

    switch (result) {
        case sat::SolveResult::Sat: {
            std::printf("s SATISFIABLE\n");
            std::string line = "v";
            for (sat::Var v = 0; v < formula.num_vars; ++v) {
                const bool value = solver.model_bool(v);
                line += ' ';
                if (!value) line += '-';
                line += std::to_string(v + 1);
                if (line.size() > 72) {  // competition-style wrapped records
                    std::printf("%s\n", line.c_str());
                    line = "v";
                }
            }
            std::printf("%s 0\n", line.c_str());
            return 10;
        }
        case sat::SolveResult::Unsat:
            std::printf("s UNSATISFIABLE\n");
            return 20;
        case sat::SolveResult::Unknown:
            std::printf("s INDETERMINATE\n");
            return 0;
    }
    return 0;
}
