// Scratch calibration driver (not part of the installed targets): sweeps the
// stack separation and damping to land the mean switching delay at ~1.55 ns
// for IS = 20 uA, and prints readout-circuit numbers for cross-checking
// against Table I/II.
#include <cstdio>

#include "core/characterization.hpp"
#include "core/gshe_switch.hpp"
#include "spin/demag.hpp"

using namespace gshe;
using namespace gshe::core;

int main(int argc, char** argv) {
    const std::size_t trials = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;

    GsheSwitchParams p;
    const auto n_w = p.write_nm.demag_n;
    std::printf("W-NM demag: Nx=%.4f Ny=%.4f Nz=%.4f (sum %.4f)\n", n_w.x, n_w.y,
                n_w.z, n_w.x + n_w.y + n_w.z);
    const auto pt = readout_point(p, 20e-6);
    std::printf("beta=%.3f r=%.1f Ohm GP=%.1f uS GAP=%.1f uS\n", p.beta(),
                p.hm_resistance(), p.gp() * 1e6, p.gap() * 1e6);
    std::printf("VOUT=%.4f mV VSUP=%.4f mV P=%.4f uW E(1.55ns)=%.4f fJ\n",
                pt.v_out * 1e3, pt.v_sup * 1e3, pt.power * 1e6,
                pt.power * 1.55e-9 * 1e15);

    for (double sep : {8e-9, 9e-9, 10e-9, 12e-9}) {
        for (double alpha : {0.008, 0.01, 0.02}) {
            GsheSwitchParams q;
            q.stack_separation = sep;
            q.write_nm.alpha = alpha;
            q.read_nm.alpha = alpha;
            GsheSwitch dev(q);
            for (double is : {20e-6, 60e-6, 100e-6}) {
                const auto d = characterize_delay(dev, is, trials, 12345);
                std::printf(
                    "sep=%4.1fnm alpha=%5.3f Is=%5.1fuA: switched %zu/%zu mean=%.3fns "
                    "sd=%.3fns min=%.3f max=%.3f\n",
                    sep * 1e9, alpha, is * 1e6, d.switched, d.trials,
                    d.stats.mean() * 1e9, d.stats.stddev() * 1e9,
                    d.stats.min() * 1e9, d.stats.max() * 1e9);
            }
        }
    }
    return 0;
}
