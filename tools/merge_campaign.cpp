// merge_campaign — the gather step of a sharded campaign: reads the K
// per-shard checkpoint journals a `run_campaign --shard=i/N --checkpoint=...`
// fleet left behind, verifies they are slices of one plan (matching plan
// fingerprints, one journal per shard, every plan index covered exactly
// once), and emits the same byte-identical deterministic CSV an unsharded
// `run_campaign --threads=1` of that plan produces:
//
//   run_campaign --shard=0/2 --checkpoint=s0.jsonl --csv=/dev/null &
//   run_campaign --shard=1/2 --checkpoint=s1.jsonl --csv=/dev/null &
//   wait
//   merge_campaign --csv=out.csv s0.jsonl s1.jsonl
//
// Inconsistent inputs — journals from different campaigns, a missing or
// duplicated shard, records missing because a shard was interrupted or its
// jobs errored — fail with one diagnostic per problem, naming the offending
// journal, shard and job keys/indices. Exit codes: 0 merged, 1 merge
// refused (diagnostics on stderr), 2 usage.
#include <cstdio>
#include <string>
#include <vector>

#include "common/report.hpp"
#include "engine/merge.hpp"
#include "engine/report.hpp"

using namespace gshe;
using namespace gshe::engine;

namespace {

void usage() {
    std::puts(
        "usage: merge_campaign [--key=value ...] JOURNAL...\n"
        "  --csv=PATH   merged CSV destination ('-' = stdout, default)\n"
        "  --json=PATH  merged full JSON report\n"
        "  --timing     add wall-clock columns to the CSV (journaled values;\n"
        "               comparable only within one shard's run)\n"
        "  JOURNAL...   one checkpoint journal per shard, any order\n"
        "\n"
        "Verifies plan fingerprints and completeness, then emits the same\n"
        "byte-identical CSV an unsharded run of the plan produces.");
}

}  // namespace

int main(int argc, char** argv) {
    std::string csv_path = "-";
    std::string json_path;
    bool timing = false;
    std::vector<std::string> journals;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto starts = [&](const char* p) { return arg.rfind(p, 0) == 0; };
        const auto val = [&] { return arg.substr(arg.find('=') + 1); };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        }
        if (arg == "--timing") { timing = true; continue; }
        if (starts("--csv=")) csv_path = val();
        else if (starts("--json=")) json_path = val();
        else if (starts("--")) {
            std::fprintf(stderr, "merge_campaign: unknown flag %s\n",
                         arg.c_str());
            usage();
            return 2;
        } else journals.push_back(arg);
    }
    if (journals.empty()) {
        usage();
        return 2;
    }

    const MergeReport report = merge_journals(journals);
    if (!report.ok()) {
        std::fprintf(stderr, "merge_campaign: refusing to merge:\n");
        for (const auto& error : report.errors)
            std::fprintf(stderr, "  - %s\n", error.c_str());
        return 1;
    }

    try {
        const std::string csv = campaign_csv(report.result, timing);
        if (csv_path == "-") {
            std::fputs(csv.c_str(), stdout);
        } else if (!csv_path.empty()) {
            write_text_file(csv_path, csv);
        }
        if (!json_path.empty())
            write_text_file(json_path, campaign_json(report.result));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "merge_campaign: report write failed: %s\n",
                     e.what());
        return 1;
    }

    std::fprintf(stderr,
                 "merged %zu journal(s): %zu jobs, plan 0x%016llx, "
                 "%zu success, %zu errors\n",
                 journals.size(), report.result.jobs.size(),
                 static_cast<unsigned long long>(
                     report.result.plan_fingerprint),
                 report.result.succeeded(), report.result.errored());
    return 0;
}
