// A2 — Ablation: which CDCL solver features carry the attack. Runs the
// identical camouflaged-circuit attack with individual solver features
// disabled. Expected: clause learning is load-bearing (without it the
// attack times out); VSIDS and restarts give large constant factors.
//
// The configurations become one CampaignRunner job matrix: JobSpec carries
// per-job AttackOptions, so each job pins its own solver feature toggles
// while circuit, defense and selection stay fixed.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "engine/campaign.hpp"
#include "netlist/corpus.hpp"

using namespace gshe;
using namespace gshe::attack;
using namespace gshe::engine;

int main() {
    bench::banner("ABLATION", "CDCL solver features under the SAT attack");
    const double timeout = std::max(bench::attack_timeout_s(), 5.0);

    struct Config {
        const char* name;
        sat::Solver::Options opts;
    };
    const std::vector<Config> configs = {
        {"full CDCL (baseline)", {}},
        {"no VSIDS (index order)", {.use_vsids = false}},
        {"no restarts", {.use_restarts = false}},
        {"no phase saving", {.use_phase_saving = false}},
        {"no clause learning (DPLL)", {.use_learning = false}},
    };

    // 5% protection: solvable by a competent CDCL within seconds, so the
    // feature gaps (and the DPLL collapse) are visible rather than all-t-o.
    std::vector<JobSpec> jobs;
    for (const Config& c : configs) {
        JobSpec spec;
        spec.circuit = "c7552";
        spec.defense.kind = "camo";
        spec.defense.library = "gshe16";
        spec.defense.fraction = 0.05;
        spec.defense.protect_seed = 0xAB2;
        spec.attack = "sat";
        spec.attack_options.timeout_seconds = timeout;
        spec.attack_options.solver = c.opts;
        jobs.push_back(std::move(spec));
    }

    CampaignOptions copts;
    copts.threads = bench::campaign_threads();
    const CampaignResult campaign = CampaignRunner(copts).run(jobs);

    std::printf("circuit: c7552 stand-in, %zu 16-function cells, timeout %.1f s\n",
                campaign.jobs.front().protected_cells, timeout);

    AsciiTable t("Attack cost by solver configuration");
    t.header({"configuration", "status", "time", "DIPs", "conflicts",
              "propagations"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const JobResult& j = campaign.jobs[i];
        const AttackResult& res = j.result;
        t.row({configs[i].name, bench::status_cell(j),
               AsciiTable::runtime(res.seconds, res.timed_out()),
               std::to_string(res.iterations),
               std::to_string(res.solver_stats.conflicts),
               std::to_string(res.solver_stats.propagations)});
    }
    std::puts(t.render().c_str());
    std::printf("campaign: %zu jobs, %.1f s wall on %d thread(s)\n",
                campaign.jobs.size(), campaign.wall_seconds, campaign.threads);
    return 0;
}
