// A2 — Ablation: which CDCL solver features carry the attack. Runs the
// identical camouflaged-circuit attack with individual solver features
// disabled. Expected: clause learning is load-bearing (without it the
// attack times out); VSIDS and restarts give large constant factors.
#include <cstdio>

#include "attack/oracle.hpp"
#include "attack/sat_attack.hpp"
#include "bench_util.hpp"
#include "camo/cell_library.hpp"
#include "camo/protect.hpp"
#include "common/ascii_table.hpp"
#include "netlist/corpus.hpp"

using namespace gshe;
using namespace gshe::attack;

int main() {
    bench::banner("ABLATION", "CDCL solver features under the SAT attack");
    const double timeout = std::max(bench::attack_timeout_s(), 5.0);

    // 5% protection: solvable by a competent CDCL within seconds, so the
    // feature gaps (and the DPLL collapse) are visible rather than all-t-o.
    const netlist::Netlist nl = netlist::build_benchmark("c7552");
    const auto sel = camo::select_gates(nl, 0.05, 0xAB2);
    const auto prot = camo::apply_camouflage(nl, sel, camo::gshe16(), 0xAB2);
    std::printf("circuit: c7552 stand-in, %zu 16-function cells, timeout %.1f s\n",
                prot.netlist.camo_cells().size(), timeout);

    struct Config {
        const char* name;
        sat::Solver::Options opts;
    };
    const Config configs[] = {
        {"full CDCL (baseline)", {}},
        {"no VSIDS (index order)", {.use_vsids = false}},
        {"no restarts", {.use_restarts = false}},
        {"no phase saving", {.use_phase_saving = false}},
        {"no clause learning (DPLL)", {.use_learning = false}},
    };

    AsciiTable t("Attack cost by solver configuration");
    t.header({"configuration", "status", "time", "DIPs", "conflicts",
              "propagations"});
    for (const Config& c : configs) {
        ExactOracle oracle(prot.netlist);
        AttackOptions opt;
        opt.timeout_seconds = timeout;
        opt.solver = c.opts;
        const AttackResult res = sat_attack(prot.netlist, oracle, opt);
        t.row({c.name,
               res.status == AttackResult::Status::Success
                   ? (res.key_exact ? "exact" : "wrong")
                   : "t-o",
               AsciiTable::runtime(res.seconds, res.timed_out()),
               std::to_string(res.iterations),
               std::to_string(res.solver_stats.conflicts),
               std::to_string(res.solver_stats.propagations)});
        std::fflush(stdout);
    }
    std::puts(t.render().c_str());
    return 0;
}
