// A2 — Ablation: which CDCL solver features carry the attack, and how the
// in-tree solver compares against an external backend. Runs the identical
// camouflaged-circuit attack with individual solver features disabled, plus
// one baseline job per additional registered SAT backend that is available
// (backend "dimacs" joins when GSHE_DIMACS_SOLVER names a solver binary).
// Expected: clause learning is load-bearing (without it the attack times
// out); VSIDS and restarts give large constant factors.
//
// The configurations become one CampaignRunner job matrix: JobSpec carries
// per-job AttackOptions, so each job pins its own solver feature toggles
// and backend while circuit, defense and selection stay fixed. Per-job
// wall-seconds by backend land in BENCH_solver.json (the perf-trajectory
// seed; see bench::write_solver_bench_json).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "engine/campaign.hpp"
#include "netlist/corpus.hpp"
#include "sat/backend.hpp"

using namespace gshe;
using namespace gshe::attack;
using namespace gshe::engine;

int main() {
    bench::banner("ABLATION", "CDCL solver features and SAT backends under the SAT attack");
    const double timeout = std::max(bench::attack_timeout_s(), 5.0);

    struct Config {
        std::string name;
        std::string backend;
        sat::Solver::Options opts;
    };
    std::vector<Config> configs = {
        {"full CDCL (baseline)", "internal", {}},
        {"no VSIDS (index order)", "internal", {.use_vsids = false}},
        {"no restarts", "internal", {.use_restarts = false}},
        {"no phase saving", "internal", {.use_phase_saving = false}},
        {"no clause learning (DPLL)", "internal", {.use_learning = false}},
    };
    // Backend comparison rows: default heuristics on every other available
    // backend (feature toggles are internal-only knobs).
    for (const std::string& name : sat::backend_names()) {
        if (name == "internal") continue;
        if (!sat::backend_by_name(name).available()) {
            std::printf("note: backend '%s' unavailable, skipping (%s)\n",
                        name.c_str(),
                        sat::backend_by_name(name).label().c_str());
            continue;
        }
        configs.push_back({"external solver (" + name + ")", name, {}});
    }

    // 5% protection: solvable by a competent CDCL within seconds, so the
    // feature gaps (and the DPLL collapse) are visible rather than all-t-o.
    std::vector<JobSpec> jobs;
    std::vector<std::string> labels;
    for (const Config& c : configs) {
        JobSpec spec;
        spec.circuit = "c7552";
        spec.defense.kind = "camo";
        spec.defense.library = "gshe16";
        spec.defense.fraction = 0.05;
        spec.defense.protect_seed = 0xAB2;
        spec.attack = "sat";
        spec.attack_options.timeout_seconds = timeout;
        spec.attack_options.solver = c.opts;
        spec.attack_options.solver_backend = c.backend;
        labels.push_back(c.name);
        jobs.push_back(std::move(spec));
    }

    CampaignOptions copts;
    copts.threads = bench::campaign_threads();
    const CampaignResult campaign = CampaignRunner(copts).run(jobs);

    std::printf("circuit: c7552 stand-in, %zu 16-function cells, timeout %.1f s\n",
                campaign.jobs.front().protected_cells, timeout);

    AsciiTable t("Attack cost by solver configuration");
    t.header({"configuration", "backend", "status", "time", "DIPs",
              "conflicts", "propagations"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const JobResult& j = campaign.jobs[i];
        const AttackResult& res = j.result;
        t.row({configs[i].name, j.solver_backend, bench::status_cell(j),
               AsciiTable::runtime(res.seconds, res.timed_out()),
               std::to_string(res.iterations),
               std::to_string(res.solver_stats.conflicts),
               std::to_string(res.solver_stats.propagations)});
    }
    std::puts(t.render().c_str());
    std::printf("campaign: %zu jobs, %.1f s wall on %d thread(s)\n",
                campaign.jobs.size(), campaign.wall_seconds, campaign.threads);
    bench::write_solver_bench_json("BENCH_solver.json", campaign, labels);
    return 0;
}
