// A2 — Ablation: which CDCL solver features carry the attack, and how the
// in-tree solver compares against an external backend. Runs the identical
// camouflaged-circuit attack with individual solver features disabled, plus
// one baseline job per additional registered SAT backend that is available
// (backend "dimacs" joins when GSHE_DIMACS_SOLVER names a solver binary).
// Expected: clause learning is load-bearing (without it the attack times
// out); VSIDS and restarts give large constant factors.
//
// The configurations become one CampaignRunner job matrix: JobSpec carries
// per-job AttackOptions, so each job pins its own solver feature toggles
// and backend while circuit, defense and selection stay fixed. Per-job
// wall-seconds by backend land in BENCH_solver.json (the perf-trajectory
// seed; see bench::write_solver_bench_json).
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "engine/campaign.hpp"
#include "netlist/corpus.hpp"
#include "sat/backend.hpp"

using namespace gshe;
using namespace gshe::attack;
using namespace gshe::engine;

int main() {
    bench::banner("ABLATION", "CDCL solver features and SAT backends under the SAT attack");
    const double timeout = std::max(bench::attack_timeout_s(), 5.0);

    struct Config {
        std::string name;
        std::string backend;
        sat::Solver::Options opts;
        // Deterministic conflict cap (0 = wall clock only). The
        // inprocessing axis runs budgeted so its baseline-vs-pass deltas
        // reproduce identically on any host.
        std::uint64_t max_conflicts = 0;
    };
    constexpr std::uint64_t kInprocessBudget = 50000;
    std::vector<Config> configs = {
        {"full CDCL (baseline)", "internal", {}},
        {"no VSIDS (index order)", "internal", {.use_vsids = false}},
        {"no restarts", "internal", {.use_restarts = false}},
        {"no phase saving", "internal", {.use_phase_saving = false}},
        {"no clause learning (DPLL)", "internal", {.use_learning = false}},
        // Inprocessing ablation axis: one budgeted baseline plus each pass
        // alone and all passes combined — the BENCH_solver.json rows CI
        // tracks for baseline-vs-inprocessing wall/conflict deltas.
        {"budgeted baseline (no inprocessing)", "internal", {},
         kInprocessBudget},
        {"inprocessing: vivification", "internal",
         {.use_vivification = true}, kInprocessBudget},
        {"inprocessing: XOR recovery", "internal",
         {.use_xor_recovery = true}, kInprocessBudget},
        {"inprocessing: BVE", "internal", {.use_bve = true},
         kInprocessBudget},
        {"inprocessing: viv+xor+bve", "internal",
         {.use_vivification = true, .use_xor_recovery = true, .use_bve = true},
         kInprocessBudget},
    };
    // Backend comparison rows: default heuristics on every other available
    // backend (feature toggles are internal-only knobs).
    for (const std::string& name : sat::backend_names()) {
        if (name == "internal") continue;
        if (!sat::backend_by_name(name).available()) {
            std::printf("note: backend '%s' unavailable, skipping (%s)\n",
                        name.c_str(),
                        sat::backend_by_name(name).label().c_str());
            continue;
        }
        configs.push_back({"external solver (" + name + ")", name, {}});
    }

    // 5% protection: solvable by a competent CDCL within seconds, so the
    // feature gaps (and the DPLL collapse) are visible rather than all-t-o.
    std::vector<JobSpec> jobs;
    std::vector<std::string> labels;
    for (const Config& c : configs) {
        JobSpec spec;
        spec.circuit = "c7552";
        spec.defense.kind = "camo";
        spec.defense.library = "gshe16";
        spec.defense.fraction = 0.05;
        spec.defense.protect_seed = 0xAB2;
        spec.attack = "sat";
        spec.attack_options.timeout_seconds = timeout;
        if (c.max_conflicts > 0)
            spec.attack_options.max_conflicts = c.max_conflicts;
        spec.attack_options.solver = c.opts;
        spec.attack_options.solver_backend = c.backend;
        labels.push_back(c.name);
        jobs.push_back(std::move(spec));
    }

    CampaignOptions copts;
    copts.threads = bench::campaign_threads();
    const CampaignResult campaign = CampaignRunner(copts).run(jobs);

    std::printf("circuit: c7552 stand-in, %zu 16-function cells, timeout %.1f s\n",
                campaign.jobs.front().protected_cells, timeout);

    AsciiTable t("Attack cost by solver configuration");
    t.header({"configuration", "backend", "status", "time", "DIPs",
              "conflicts", "propagations"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const JobResult& j = campaign.jobs[i];
        const AttackResult& res = j.result;
        t.row({configs[i].name, j.solver_backend, bench::status_cell(j),
               AsciiTable::runtime(res.seconds, res.timed_out()),
               std::to_string(res.iterations),
               std::to_string(res.solver_stats.conflicts),
               std::to_string(res.solver_stats.propagations)});
    }
    std::puts(t.render().c_str());
    std::printf("campaign: %zu jobs, %.1f s wall on %d thread(s)\n",
                campaign.jobs.size(), campaign.wall_seconds, campaign.threads);
    bench::write_solver_bench_json("BENCH_solver.json", campaign, labels);

    // ---- portfolio width sweep ---------------------------------------------
    // Same attack on a small instance matrix, backend "portfolio" in
    // wall-clock race mode at widths {1, 2, 4} against the "internal"
    // baseline. The race tier is where a portfolio earns wall-clock: each
    // miter solve is won by whichever diversified worker finishes first
    // (and the LBD<=2 clause exchange cuts the winner's conflict count well
    // below the single-engine baseline), so with one core per worker the
    // hard solves collapse to the min over K trajectories. With fewer cores
    // than workers the threads time-slice and the sweep instead measures
    // the multiplexing penalty — host_cpus is recorded in the JSON so the
    // perf trajectory only compares like with like. Per-width geomean
    // speedups land in BENCH_portfolio.json.
    struct Instance {
        double fraction;
        std::uint64_t protect_seed;
    };
    const std::vector<Instance> instances = {
        {0.08, 0xAB2}, {0.12, 0xAB2}, {0.12, 0xAB3}};
    const unsigned host_cpus = std::thread::hardware_concurrency();
    if (host_cpus < 4)
        std::printf(
            "note: %u core(s) < width 4 — race workers will time-slice, so "
            "wall-clock speedups below reflect scheduling, not the "
            "portfolio\n",
            host_cpus);
    std::vector<std::string> instance_labels;
    for (const Instance& inst : instances) {
        char label[64];
        std::snprintf(label, sizeof label, "c7552 camo %.0f%% seed %llx",
                      inst.fraction * 100.0,
                      static_cast<unsigned long long>(inst.protect_seed));
        instance_labels.push_back(label);
    }

    auto run_matrix = [&](const std::string& backend, int width, bool race) {
        std::vector<JobSpec> sweep;
        for (const Instance& inst : instances) {
            JobSpec spec;
            spec.circuit = "c7552";
            spec.defense.kind = "camo";
            spec.defense.library = "gshe16";
            spec.defense.fraction = inst.fraction;
            spec.defense.protect_seed = inst.protect_seed;
            spec.attack = "sat";
            spec.attack_options.timeout_seconds = timeout;
            spec.attack_options.solver_backend = backend;
            spec.attack_options.solver.portfolio_width = width;
            spec.attack_options.solver.portfolio_race = race;
            sweep.push_back(std::move(spec));
        }
        CampaignOptions sweep_opts;
        sweep_opts.threads = 1;  // the portfolio threads internally per solve
        return CampaignRunner(sweep_opts).run(sweep);
    };

    const CampaignResult baseline = run_matrix("internal", 1, false);
    std::vector<double> internal_seconds;
    for (const JobResult& j : baseline.jobs)
        internal_seconds.push_back(j.result.seconds);

    std::vector<bench::PortfolioWidthSummary> widths;
    for (const int width : {1, 2, 4}) {
        const CampaignResult run = run_matrix("portfolio", width, true);
        bench::PortfolioWidthSummary s;
        s.width = width;
        s.race = true;
        s.wall_seconds = run.wall_seconds;
        double log_sum = 0.0;
        for (std::size_t i = 0; i < run.jobs.size(); ++i) {
            const JobResult& j = run.jobs[i];
            s.attack_seconds.push_back(j.result.seconds);
            s.statuses.push_back(bench::status_cell(j));
            // Both timed out: no information, count the ratio as 1x.
            const bool both_to =
                j.result.timed_out() && baseline.jobs[i].result.timed_out();
            const double ratio =
                both_to ? 1.0
                        : internal_seconds[i] /
                              std::max(j.result.seconds, 1e-4);
            log_sum += std::log(ratio);
        }
        s.geomean_speedup =
            std::exp(log_sum / static_cast<double>(run.jobs.size()));
        widths.push_back(std::move(s));
    }

    AsciiTable pt("Portfolio race: wall-clock vs backend internal");
    pt.header({"width", "instance", "status", "time", "internal", "speedup"});
    for (const bench::PortfolioWidthSummary& s : widths) {
        for (std::size_t i = 0; i < instances.size(); ++i)
            pt.row({std::to_string(s.width), instance_labels[i],
                    s.statuses[i],
                    AsciiTable::runtime(s.attack_seconds[i], false),
                    AsciiTable::runtime(internal_seconds[i], false),
                    bench::eng(internal_seconds[i] /
                                   std::max(s.attack_seconds[i], 1e-4),
                               "x")});
        char geo[64];
        std::snprintf(geo, sizeof geo, "geomean %.2fx", s.geomean_speedup);
        pt.row({std::to_string(s.width), "(all)", "", "", "", geo});
    }
    std::puts(pt.render().c_str());
    bench::write_portfolio_bench_json("BENCH_portfolio.json", instance_labels,
                                      internal_seconds, widths, host_cpus);
    return 0;
}
