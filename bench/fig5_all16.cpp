// E6 — Fig. 5: all 16 possible Boolean functionalities for two inputs
// implemented by the single polymorphic GSHE primitive, with the terminal
// assignment that realizes each and the verified truth table.
#include <cstdio>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "core/primitive.hpp"

using namespace gshe;
using namespace gshe::core;

int main() {
    bench::banner("FIG. 5", "all 16 Boolean functions from one device instance");

    AsciiTable t("Canonical terminal assignments (every config drives 3 wires)");
    t.header({"Function", "f(0,0)", "f(0,1)", "f(1,0)", "f(1,1)",
              "Terminal assignment", "verified"});
    int verified = 0;
    for (const Bool2 fn : Bool2::all()) {
        const Primitive prim(fn);
        bool ok = prim.function() == fn;
        for (int a = 0; a < 2 && ok; ++a)
            for (int b = 0; b < 2 && ok; ++b)
                ok = prim.eval(a != 0, b != 0) == fn.eval(a != 0, b != 0);
        verified += ok ? 1 : 0;
        t.row({std::string(fn.name()),
               fn.eval(false, false) ? "1" : "0", fn.eval(false, true) ? "1" : "0",
               fn.eval(true, false) ? "1" : "0", fn.eval(true, true) ? "1" : "0",
               prim.config().to_string(), ok ? "yes" : "NO"});
    }
    std::puts(t.render().c_str());
    std::printf("verified: %d/16 functions cloaked by one layout-identical instance\n",
                verified);

    // Configuration-space census: how many distinct assignments realize each
    // function (all of them optically indistinguishable).
    AsciiTable census("Terminal-assignment census over all valid configurations");
    census.header({"Function", "# configurations"});
    int counts[16] = {};
    for (const PrimitiveConfig& c : Primitive::all_valid_configs())
        ++counts[Primitive::function_of(c).truth_table()];
    for (const Bool2 fn : Bool2::all())
        census.row({std::string(fn.name()),
                    std::to_string(counts[fn.truth_table()])});
    std::puts(census.render().c_str());
    return verified == 16 ? 0 : 1;
}
