// Ablation: legacy per-gate Tseitin vs the compact CNF encoder (constant
// folding + structural hashing + key-cone reduction) on the default camo
// matrix. The same {circuit x seed} SAT-attack jobs run once per encoder
// mode; the headline metric is the agreement CNF emitted per DIP iteration
// — exactly the cost the compact encoder attacks, since every iteration of
// the loop adds two oracle-agreement copies of the circuit under legacy
// encoding but only the key cone (with simulated frontier constants) under
// compact encoding.
//
// Budgeted by the deterministic conflict cap, not the wall clock: the
// compact encoder makes jobs *faster*, so a tight wall-clock timeout would
// let borderline cells succeed compact and time out legacy, muddying the
// comparison. The exit code gates only on deterministic counters (statuses
// agree across modes, exact keys, and a >= 5x per-iteration CNF reduction);
// the wall-clock geomean speedup is reported and recorded in
// BENCH_encoder.json but never gated on.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "engine/campaign.hpp"
#include "engine/report.hpp"

using namespace gshe;
using namespace gshe::engine;

namespace {

/// Agreement CNF (vars + clauses) emitted per DIP iteration, the encoder's
/// per-iteration footprint. Jobs that finish without any agreement (the DIP
/// loop proved the key on iteration zero) have no footprint to compare.
double per_iteration_cnf(const JobResult& j) {
    const auto& es = j.result.encoder_stats;
    if (es.agreements == 0) return 0.0;
    return static_cast<double>(es.agreement_vars + es.agreement_clauses) /
           static_cast<double>(es.agreements);
}

}  // namespace

int main() {
    bench::banner("ABLATION",
                  "compact CNF encoder vs legacy Tseitin in the DIP loop");
    const double timeout = std::max(bench::attack_timeout_s(), 120.0);
    constexpr std::uint64_t kMaxConflicts = 30000;

    DefenseConfig defense;  // run_campaign's default camo matrix settings
    defense.kind = "camo";
    defense.fraction = 0.05;
    defense.protect_seed = 0xEC0;

    std::vector<std::string> labels;
    CampaignResult results[2];
    for (int m = 0; m < 2; ++m) {
        attack::AttackOptions attack_options;
        attack_options.timeout_seconds = timeout;
        attack_options.max_conflicts = kMaxConflicts;
        attack_options.encoder = m == 0 ? "legacy" : "compact";
        const std::vector<JobSpec> jobs = CampaignRunner::cross_product(
            {"ex1010", "c7552"}, {defense}, {"sat"}, {1, 2}, attack_options);
        if (labels.empty())
            for (const JobSpec& s : jobs)
                labels.push_back(s.circuit + "/s" +
                                 std::to_string(s.seed));
        CampaignOptions copts;
        copts.threads = bench::campaign_threads();
        results[m] = CampaignRunner(copts).run(jobs);
    }
    const CampaignResult& legacy = results[0];
    const CampaignResult& compact = results[1];

    AsciiTable t("Agreement CNF per DIP iteration (vars + clauses)");
    t.header({"job", "status", "legacy", "compact", "reduction", "legacy s",
              "compact s"});
    bool statuses_agree = true;
    bool keys_exact = true;
    double log_reduction_sum = 0.0, log_speedup_sum = 0.0;
    std::size_t reduction_n = 0, speedup_n = 0;
    for (std::size_t i = 0; i < legacy.jobs.size(); ++i) {
        const JobResult& jl = legacy.jobs[i];
        const JobResult& jc = compact.jobs[i];
        if (bench::status_cell(jl) != bench::status_cell(jc))
            statuses_agree = false;
        if (!jl.result.key_exact || !jc.result.key_exact) keys_exact = false;
        const double pl = per_iteration_cnf(jl);
        const double pc = per_iteration_cnf(jc);
        const double reduction = pc > 0.0 ? pl / pc : 0.0;
        if (reduction > 0.0) {
            log_reduction_sum += std::log(reduction);
            ++reduction_n;
        }
        if (jl.result.seconds > 0.0 && jc.result.seconds > 0.0) {
            log_speedup_sum += std::log(jl.result.seconds / jc.result.seconds);
            ++speedup_n;
        }
        t.row({i < labels.size() ? labels[i] : std::to_string(i),
               bench::status_cell(jc), AsciiTable::num(pl, 6),
               AsciiTable::num(pc, 6),
               reduction > 0.0 ? AsciiTable::num(reduction, 3) + "x" : "n/a",
               AsciiTable::runtime(jl.result.seconds, false),
               AsciiTable::runtime(jc.result.seconds, false)});
    }
    std::puts(t.render().c_str());

    const double reduction_geomean =
        reduction_n ? std::exp(log_reduction_sum /
                               static_cast<double>(reduction_n))
                    : 0.0;
    const double speedup_geomean =
        speedup_n ? std::exp(log_speedup_sum / static_cast<double>(speedup_n))
                  : 1.0;
    std::printf("per-iteration CNF reduction geomean: %.2fx (gate: >= 5x)\n",
                reduction_geomean);
    std::printf("wall-clock geomean speedup: %.2fx (measured, not gated)\n",
                speedup_geomean);
    std::printf("statuses agree across modes: %s; keys exact: %s\n",
                statuses_agree ? "yes" : "NO (BUG)",
                keys_exact ? "yes" : "NO (BUG)");

    bench::write_encoder_bench_json("BENCH_encoder.json", labels, legacy,
                                    compact, reduction_geomean,
                                    speedup_geomean);
    const bool ok =
        statuses_agree && keys_exact && reduction_n > 0 &&
        reduction_geomean >= 5.0;
    return ok ? 0 : 1;
}
