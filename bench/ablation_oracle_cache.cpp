// A3 — Ablation: what the shared oracle service's query memo saves when a
// job matrix attacks identical defense instances (the Table IV methodology:
// one memorized gate selection reapplied across every technique column, so
// every {attack x seed} cell of a circuit faces the *same* chip).
//
// The same campaign runs twice — --oracle-cache=off then on — over a matrix
// whose defense uses a pinned protect_seed, putting all jobs of a circuit
// into one defense-instance sharing group. Expected: the deterministic CSV
// is byte-identical across modes (the memo may never change results, only
// cost), while the number of oracle batches that actually reach the
// bit-parallel simulator drops sharply — the SAT attack re-derives largely
// the same DIP sequence for every seed replicate, and with the memo on only
// the first job pays for it. BENCH_oracle_cache.json records both modes
// (wall-seconds and oracle-pattern counts) as the perf-trajectory point.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "engine/campaign.hpp"
#include "engine/report.hpp"

using namespace gshe;
using namespace gshe::engine;

int main() {
    bench::banner("ABLATION",
                  "oracle query memo across jobs sharing a defense instance");
    // Budgeted by the deterministic conflict cap, not the wall clock: the
    // memo makes jobs *faster*, so a tight wall-clock timeout would let
    // borderline cells succeed with the memo on and time out with it off —
    // and the whole point of the comparison is that results never move.
    const double timeout = std::max(bench::attack_timeout_s(), 120.0);
    constexpr std::uint64_t kMaxConflicts = 30000;

    // One circuit, one pinned defense instance, {2 attacks x 3 seeds} = 6
    // jobs in a single sharing group (plus nothing else, so every saving in
    // the numbers below is the memo's doing).
    DefenseConfig defense;
    defense.kind = "camo";
    defense.library = "gshe16";
    defense.fraction = 0.05;
    defense.protect_seed = 0xAB2;
    attack::AttackOptions attack_options;
    attack_options.timeout_seconds = timeout;
    attack_options.max_conflicts = kMaxConflicts;
    const std::vector<JobSpec> jobs = CampaignRunner::cross_product(
        {"c7552"}, {defense}, {"sat", "double_dip"}, {1, 2, 3},
        attack_options);

    std::vector<bench::OracleCacheModeSummary> modes;
    std::string csv_off, csv_on;
    for (const bool cache_on : {false, true}) {
        CampaignOptions copts;
        copts.threads = bench::campaign_threads();
        copts.oracle_cache =
            cache_on ? OracleCacheMode::On : OracleCacheMode::Off;
        const CampaignResult campaign = CampaignRunner(copts).run(jobs);
        (cache_on ? csv_on : csv_off) = campaign_csv(campaign);
        modes.push_back(
            bench::summarize_cache_mode(cache_on ? "on" : "off", campaign));
    }

    AsciiTable t("Oracle cost by query-memo mode (6 jobs, 1 shared instance)");
    t.header({"memo", "wall s", "batches issued", "batches simulated",
              "hits", "misses"});
    for (const auto& s : modes)
        t.row({s.mode, AsciiTable::runtime(s.wall_seconds, false),
               std::to_string(s.batches_logical),
               std::to_string(s.batches_evaluated),
               std::to_string(s.cache_hits), std::to_string(s.cache_misses)});
    std::puts(t.render().c_str());

    const bool identical = csv_off == csv_on;
    std::printf("deterministic CSV identical across modes: %s\n",
                identical ? "yes" : "NO — memo changed results (BUG)");
    if (!modes.empty() && modes.front().batches_evaluated > 0) {
        const double saved =
            100.0 *
            (1.0 - static_cast<double>(modes.back().batches_evaluated) /
                       static_cast<double>(modes.front().batches_evaluated));
        std::printf("oracle batches simulated: %llu -> %llu (%.1f%% saved)\n",
                    static_cast<unsigned long long>(
                        modes.front().batches_evaluated),
                    static_cast<unsigned long long>(
                        modes.back().batches_evaluated),
                    saved);
    }
    bench::write_oracle_cache_bench_json("BENCH_oracle_cache.json", modes,
                                         jobs.size(), 1);
    return identical ? 0 : 1;
}
