// E10 — Sec. II: the STT-LUT scheme of Winograd et al. [25] under attack.
// "We protect the s38584 benchmark according to their technique and observe
// that the protected layout can be decamouflaged in less than 30 seconds on
// average (over 100 runs of camouflaging and SAT attacks). This weak
// resilience stems from the limited use of their STT-LUT primitive to curb
// power, performance, and area overheads."
//
// We reproduce the experiment on the s38584-class sequential stand-in:
// scan-unroll, protect a small cost-constrained fraction with full 2-input
// LUT cells, attack, repeat over seeded runs (GSHE_STT_RUNS, default 10).
#include <cstdio>

#include "attack/oracle.hpp"
#include "attack/sat_attack.hpp"
#include "bench_util.hpp"
#include "camo/cell_library.hpp"
#include "camo/protect.hpp"
#include "common/ascii_table.hpp"
#include "common/stats.hpp"
#include "netlist/corpus.hpp"
#include "netlist/sequential.hpp"

using namespace gshe;
using namespace gshe::attack;

int main() {
    bench::banner("SEC. II", "STT-LUT [25]: cost-constrained protection breaks fast");
    const auto runs = static_cast<std::size_t>(env_long("GSHE_STT_RUNS", 10));
    // Winograd et al. constrain the LUT count to curb PPA overheads; ~2% of
    // gates mirrors their reported deployment scale.
    const double fraction = 0.02;

    const netlist::Netlist seq = netlist::build_benchmark("s38584");
    const netlist::Netlist comb = netlist::unroll_for_scan(seq);
    std::printf("s38584 stand-in: %zu gates, %zu FFs -> scan view %zu in / %zu out\n",
                seq.logic_gate_count(), seq.dffs().size(), comb.inputs().size(),
                comb.outputs().size());

    RunningStats times;
    std::size_t broken = 0;
    AsciiTable t("Per-run results (" + std::to_string(runs) + " seeded runs; paper: 100)");
    t.header({"Run", "LUT cells", "key bits", "DIPs", "time", "exact key"});
    for (std::size_t r = 0; r < runs; ++r) {
        const auto sel = camo::select_gates(comb, fraction, 1000 + r);
        const auto prot = camo::apply_camouflage(comb, sel, camo::stt_lut16(), 1000 + r);
        ExactOracle oracle(prot.netlist);
        AttackOptions opt;
        opt.timeout_seconds = 60.0;
        const AttackResult res = sat_attack(prot.netlist, oracle, opt);
        if (res.status == AttackResult::Status::Success) {
            ++broken;
            times.add(res.seconds);
        }
        t.row({std::to_string(r), std::to_string(sel.size()),
               std::to_string(prot.netlist.key_bit_count()),
               std::to_string(res.iterations),
               AsciiTable::runtime(res.seconds, res.timed_out()),
               res.key_exact ? "yes" : "no"});
    }
    std::puts(t.render().c_str());
    std::printf("decamouflaged %zu/%zu runs; mean attack time %.3f s "
                "(paper: < 30 s average)\n",
                broken, runs, times.count() ? times.mean() : 0.0);
    return 0;
}
