// E11 — Fig. 6: path-delay distributions of the IBM superblue circuits.
// "Large-scale circuits typically exhibit biased distributions of delay
// paths, with most paths having short delays but few paths having dominant,
// critical delays" — the structural fact the delay-aware hybrid CMOS-GSHE
// deployment exploits.
//
// One histogram per superblue-class stand-in (endpoint worst-arrival
// distribution, as an STA "path" report); the critical paths are the
// sparse right-tail marks.
#include <cstdio>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "netlist/corpus.hpp"
#include "sta/sta.hpp"

using namespace gshe;
using namespace gshe::sta;

int main() {
    bench::banner("FIG. 6", "path-delay distributions, superblue-class circuits");

    AsciiTable summary("Summary");
    summary.header({"Circuit", "gates", "endpoints", "critical delay",
                    "median endpoint", "total paths (DP)"});

    for (const auto& entry : netlist::timing_corpus()) {
        const netlist::Netlist nl = netlist::build_benchmark(entry.name);
        const auto delays = gate_delays(nl);
        const TimingReport rep = analyze(nl, delays);
        const Histogram h = endpoint_delay_histogram(nl, delays, 30);

        std::printf("\n%s — endpoints per path-delay bin (0 .. %s):\n",
                    entry.name.c_str(),
                    bench::eng(rep.critical_delay, "s").c_str());
        std::puts(h.ascii(46).c_str());

        // Median endpoint arrival from the histogram.
        std::uint64_t half = h.total() / 2, acc = 0;
        double median = 0.0;
        for (std::size_t b = 0; b < h.bins(); ++b) {
            acc += h.count(b);
            if (acc >= half) {
                median = h.bin_center(b);
                break;
            }
        }
        char paths[32];
        std::snprintf(paths, sizeof paths, "%.3g", total_path_count(nl));
        summary.row({entry.name, std::to_string(nl.logic_gate_count()),
                     std::to_string(h.total()),
                     bench::eng(rep.critical_delay, "s"),
                     bench::eng(median, "s"), paths});
    }
    std::puts(summary.render().c_str());
    std::puts("Shape check: the bulk of endpoints sits at a small fraction of the");
    std::puts("critical delay (the paper's 0-30 ns axis with crosses at the sparse");
    std::puts("critical paths) — the slack the GSHE primitive's 1.55 ns can hide in.");
    return 0;
}
