// EXT — runtime polymorphism / dynamic keys (Sec. V-C, after Koteshwara et
// al. [40]): "alter the key dynamically, thereby rendering runtime-
// intensive attacks incapable (SAT attacks in particular)".
//
// The chip re-assigns its camouflaged cells' functions every `interval`
// oracle queries (authorized epochs compute the true function). The SAT
// attack accumulates I/O constraints across epochs it cannot distinguish;
// once the re-key interval drops below the attack's query need, the
// constraint set turns inconsistent — deterministic devices, same collapse
// as the stochastic mode.
#include <cstdio>

#include "attack/sat_attack.hpp"
#include "bench_util.hpp"
#include "camo/cell_library.hpp"
#include "camo/dynamic.hpp"
#include "camo/protect.hpp"
#include "common/ascii_table.hpp"
#include "netlist/corpus.hpp"

using namespace gshe;
using namespace gshe::attack;

int main() {
    bench::banner("EXTENSION", "dynamic re-keying vs the SAT attack");
    const double timeout = std::max(bench::attack_timeout_s(), 15.0);

    const netlist::Netlist nl = netlist::build_benchmark("ex1010");
    const auto sel = camo::select_gates(nl, 0.10, 0x40);
    const auto prot = camo::apply_camouflage(nl, sel, camo::gshe16(), 0x40);
    std::printf("circuit: ex1010 stand-in, %zu GSHE cells; attack needs ~20-50 "
                "oracle queries when static\n\n",
                prot.netlist.camo_cells().size());

    AsciiTable t("Attack outcome vs re-key interval (queries per epoch)");
    t.header({"interval", "epochs seen", "attack outcome", "DIPs", "time"});
    for (const std::uint64_t interval : {0ULL, 1000ULL, 100ULL, 10ULL, 2ULL}) {
        camo::RekeyingOracle oracle(prot.netlist, interval,
                                    /*scramble_frac=*/0.5, /*duty_true=*/0.3,
                                    0x41);
        AttackOptions opt;
        opt.timeout_seconds = timeout;
        const AttackResult res = sat_attack(prot.netlist, oracle, opt);
        std::string outcome;
        switch (res.status) {
            case AttackResult::Status::Success:
                outcome = res.key_exact ? "BROKEN (exact key)"
                                        : "defeated (wrong key)";
                break;
            case AttackResult::Status::Inconsistent:
                outcome = "defeated (inconsistent)";
                break;
            default:
                outcome = "t-o";
        }
        t.row({interval == 0 ? "static" : std::to_string(interval),
               std::to_string(oracle.epochs_elapsed()), outcome,
               std::to_string(res.iterations),
               AsciiTable::runtime(res.seconds, res.timed_out())});
        std::fflush(stdout);
    }
    std::puts(t.render().c_str());
    std::puts("A static chip (or one re-keyed slower than the attack's query");
    std::puts("count) is broken; once re-keying outpaces the DIP loop, the");
    std::puts("attack collapses — runtime polymorphism as dynamic protection,");
    std::puts("with no stochasticity required.");
    return 0;
}
