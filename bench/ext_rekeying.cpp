// EXT — runtime polymorphism / dynamic keys (Sec. V-C, after Koteshwara et
// al. [40]): "alter the key dynamically, thereby rendering runtime-
// intensive attacks incapable (SAT attacks in particular)".
//
// The chip re-assigns its camouflaged cells' functions every `interval`
// oracle queries (authorized epochs compute the true function). The SAT
// attack accumulates I/O constraints across epochs it cannot distinguish;
// once the re-key interval drops below the attack's query need, the
// constraint set turns inconsistent — deterministic devices, same collapse
// as the stochastic mode.
//
// The interval sweep is one CampaignRunner job matrix over the "dynamic"
// defense kind; JobResult::oracle_epochs carries the epochs-seen column.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "engine/campaign.hpp"
#include "netlist/corpus.hpp"

using namespace gshe;
using namespace gshe::attack;
using namespace gshe::engine;

int main() {
    bench::banner("EXTENSION", "dynamic re-keying vs the SAT attack");
    const double timeout = std::max(bench::attack_timeout_s(), 15.0);

    const std::vector<std::uint64_t> intervals = {0, 1000, 100, 10, 2};
    std::vector<DefenseConfig> defenses;
    for (const std::uint64_t interval : intervals) {
        DefenseConfig d;
        d.kind = "dynamic";
        d.fraction = 0.10;
        d.rekey_interval = interval;  // 0 = static (re-keying disabled)
        d.scramble_frac = 0.5;
        d.duty_true = 0.3;
        d.protect_seed = 0x40;  // one selection for the whole sweep
        defenses.push_back(std::move(d));
    }
    AttackOptions opt;
    opt.timeout_seconds = timeout;
    const auto jobs =
        CampaignRunner::cross_product({"ex1010"}, defenses, {"sat"}, {1}, opt);

    CampaignOptions copts;
    copts.threads = bench::campaign_threads();
    const CampaignResult campaign = CampaignRunner(copts).run(jobs);

    std::printf("circuit: ex1010 stand-in, %zu GSHE cells; attack needs ~20-50 "
                "oracle queries when static\n\n",
                campaign.jobs.front().protected_cells);

    AsciiTable t("Attack outcome vs re-key interval (queries per epoch)");
    t.header({"interval", "epochs seen", "attack outcome", "DIPs", "time"});
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        const JobResult& j = campaign.jobs[i];
        const AttackResult& res = j.result;
        std::string outcome;
        if (!j.error.empty()) {
            outcome = "error";
        } else {
            switch (res.status) {
                case AttackResult::Status::Success:
                    outcome = res.key_exact ? "BROKEN (exact key)"
                                            : "defeated (wrong key)";
                    break;
                case AttackResult::Status::Inconsistent:
                    outcome = "defeated (inconsistent)";
                    break;
                default:
                    outcome = "t-o";
            }
        }
        t.row({intervals[i] == 0 ? "static" : std::to_string(intervals[i]),
               std::to_string(j.oracle_epochs), outcome,
               std::to_string(res.iterations),
               AsciiTable::runtime(res.seconds, res.timed_out())});
    }
    std::puts(t.render().c_str());
    std::printf("campaign: %zu jobs, %.1f s wall on %d thread(s)\n",
                campaign.jobs.size(), campaign.wall_seconds, campaign.threads);
    std::puts("A static chip (or one re-keyed slower than the attack's query");
    std::puts("count) is broken; once re-keying outpaces the DIP loop, the");
    std::puts("attack collapses — runtime polymorphism as dynamic protection,");
    std::puts("with no stochasticity required.");
    return 0;
}
