// A3 — google-benchmark microbenchmarks of the computational kernels under
// the paper's experiments: sLLGS integration, device evaluation, packed
// logic simulation, CNF encoding and SAT solving.
#include <benchmark/benchmark.h>

#include "attack/oracle.hpp"
#include "camo/cell_library.hpp"
#include "camo/protect.hpp"
#include "common/rng.hpp"
#include "core/gshe_switch.hpp"
#include "core/primitive.hpp"
#include "netlist/corpus.hpp"
#include "netlist/generator.hpp"
#include "netlist/simulator.hpp"
#include "sat/solver.hpp"
#include "sat/tseitin.hpp"
#include "sta/sta.hpp"

namespace {

using namespace gshe;

void BM_LlgsHeunStep(benchmark::State& state) {
    const core::GsheSwitch device;
    auto sys = device.make_system();
    spin::SpinTorque t;
    t.polarization = {1, 0, 0};
    t.spin_current = 20e-6;
    sys.set_torque(0, t);
    Rng rng(1);
    for (auto _ : state) {
        sys.step_heun(1e-12, rng);
        benchmark::DoNotOptimize(sys.m(1));
    }
}
BENCHMARK(BM_LlgsHeunStep);

void BM_SwitchingTransient(benchmark::State& state) {
    const core::GsheSwitch device;
    Rng rng(2);
    for (auto _ : state) {
        Rng trial = rng.fork();
        benchmark::DoNotOptimize(
            device.simulate_switching(60e-6, true, trial));
    }
}
BENCHMARK(BM_SwitchingTransient)->Unit(benchmark::kMicrosecond);

void BM_PrimitiveEval(benchmark::State& state) {
    const core::Primitive prim(core::Bool2::NAND());
    bool a = false, b = true;
    for (auto _ : state) {
        benchmark::DoNotOptimize(prim.eval(a, b));
        a = !a;
        b ^= a;
    }
}
BENCHMARK(BM_PrimitiveEval);

void BM_PackedSimulation(benchmark::State& state) {
    const auto nl = netlist::build_benchmark("c7552");
    const netlist::Simulator sim(nl);
    Rng rng(3);
    std::vector<std::uint64_t> pi(nl.inputs().size());
    for (auto& w : pi) w = rng();
    for (auto _ : state) benchmark::DoNotOptimize(sim.run(pi));
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PackedSimulation);

void BM_ReferenceWalkSimulation(benchmark::State& state) {
    // The pre-SimPlan per-gate topological walk, kept as the executable
    // spec — the baseline the compiled kernel above is measured against.
    const auto nl = netlist::build_benchmark("c7552");
    const netlist::Simulator sim(nl);
    Rng rng(3);
    std::vector<std::uint64_t> pi(nl.inputs().size());
    for (auto& w : pi) w = rng();
    for (auto _ : state) benchmark::DoNotOptimize(sim.run_reference(pi));
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ReferenceWalkSimulation);

void BM_MultiWordSimulation(benchmark::State& state) {
    // One run_words(16) pass = 1024 patterns, the OracleService batch /
    // AppSAT error-estimation sweep shape.
    const auto nl = netlist::build_benchmark("c7552");
    const netlist::Simulator sim(nl);
    constexpr std::size_t kWords = 16;
    Rng rng(5);
    std::vector<std::uint64_t> pi(nl.inputs().size() * kWords);
    for (auto& w : pi) w = rng();
    for (auto _ : state) benchmark::DoNotOptimize(sim.run_words(pi, kWords));
    state.SetItemsProcessed(state.iterations() * 64 * kWords);
}
BENCHMARK(BM_MultiWordSimulation);

void BM_FrontierSweepSingle(benchmark::State& state) {
    // The compact encoder's per-DIP sweep: the cone-restricted sub-plan on
    // a 10%-camouflaged c7552 stand-in, one pattern per call.
    const auto nl = netlist::build_benchmark("c7552");
    const auto sel = camo::select_gates(nl, 0.10, 1);
    const auto prot = camo::apply_camouflage(nl, sel, camo::gshe16(), 1);
    const netlist::Simulator sim(prot.netlist);
    Rng rng(6);
    std::vector<bool> pattern(prot.netlist.inputs().size());
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = (rng() & 1) != 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.run_frontier_single(pattern));
}
BENCHMARK(BM_FrontierSweepSingle);

void BM_FrontierSweepWords(benchmark::State& state) {
    // The batched agreement path: one cone-restricted run_frontier_words(16)
    // serving up to 1024 queued DIP lanes.
    const auto nl = netlist::build_benchmark("c7552");
    const auto sel = camo::select_gates(nl, 0.10, 1);
    const auto prot = camo::apply_camouflage(nl, sel, camo::gshe16(), 1);
    const netlist::Simulator sim(prot.netlist);
    constexpr std::size_t kWords = 16;
    Rng rng(7);
    std::vector<std::uint64_t> pi(prot.netlist.inputs().size() * kWords);
    for (auto& w : pi) w = rng();
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.run_frontier_words(pi, kWords));
    state.SetItemsProcessed(state.iterations() * 64 * kWords);
}
BENCHMARK(BM_FrontierSweepWords);

void BM_TseitinEncode(benchmark::State& state) {
    const auto nl = netlist::build_benchmark("c7552");
    for (auto _ : state) {
        sat::Solver solver;
        benchmark::DoNotOptimize(sat::encode_circuit(solver, nl));
    }
}
BENCHMARK(BM_TseitinEncode)->Unit(benchmark::kMillisecond);

void BM_SatSolveMiter(benchmark::State& state) {
    // One miter solve (first DIP) of a 10%-camouflaged c7552 stand-in.
    const auto nl = netlist::build_benchmark("c7552");
    const auto sel = camo::select_gates(nl, 0.10, 1);
    const auto prot = camo::apply_camouflage(nl, sel, camo::gshe16(), 1);
    for (auto _ : state) {
        sat::Solver solver;
        const auto e1 = sat::encode_circuit(solver, prot.netlist);
        const auto e2 = sat::encode_circuit(solver, prot.netlist, e1.pis);
        sat::add_difference(solver, e1.outs, e2.outs);
        benchmark::DoNotOptimize(solver.solve());
    }
}
BENCHMARK(BM_SatSolveMiter)->Unit(benchmark::kMillisecond);

void BM_StaAnalyze(benchmark::State& state) {
    const auto nl = netlist::build_benchmark("sb18");
    const auto delays = sta::gate_delays(nl);
    for (auto _ : state)
        benchmark::DoNotOptimize(sta::analyze(nl, delays));
}
BENCHMARK(BM_StaAnalyze)->Unit(benchmark::kMillisecond);

void BM_StochasticOracleQuery(benchmark::State& state) {
    const auto nl = netlist::build_benchmark("c7552");
    const auto sel = camo::select_gates(nl, 0.10, 2);
    const auto prot = camo::apply_camouflage(nl, sel, camo::gshe16(), 2);
    attack::StochasticOracle oracle(prot.netlist, 0.95, 3);
    Rng rng(4);
    std::vector<std::uint64_t> pi(nl.inputs().size());
    for (auto& w : pi) w = rng();
    for (auto _ : state) benchmark::DoNotOptimize(oracle.query(pi));
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_StochasticOracleQuery);

}  // namespace

BENCHMARK_MAIN();
