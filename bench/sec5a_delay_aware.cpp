// E12 — Sec. V-A hybrid CMOS-GSHE study: "we replace CMOS gates in the
// non-critical paths with the GSHE-based primitive such that no delay
// overheads can be expected. On an average, we can camouflage 5-15% of all
// gates this way. Conducting SAT attacks on those protected designs, we
// observe that they cannot be resolved within 240 hours."
//
// Per superblue-class circuit: zero-overhead delay-aware selection, GSHE
// camouflaging, STA verification (no overhead), then the SAT attack at the
// scaled timeout. The attacks run as one CampaignRunner job matrix (the
// "delay_aware" defense kind reproduces the slack-driven selection); only
// the STA columns are recomputed inline, from the same seeded selection the
// DefenseFactory uses.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "engine/campaign.hpp"
#include "netlist/corpus.hpp"
#include "sta/delay_aware.hpp"

using namespace gshe;
using namespace gshe::attack;
using namespace gshe::engine;

int main() {
    bench::banner("SEC. V-A (hybrid)", "delay-aware zero-overhead GSHE camouflaging");
    const double timeout = bench::attack_timeout_s();

    const auto corpus = netlist::timing_corpus();
    std::vector<JobSpec> jobs;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        JobSpec spec;
        spec.circuit = corpus[i].name;
        spec.defense.kind = "delay_aware";
        spec.defense.library = "gshe16";
        spec.defense.fraction = 1.0;  // no cap: slack alone decides
        spec.defense.protect_seed = 0x5b + i;
        spec.attack = "sat";
        spec.attack_options.timeout_seconds = timeout;
        jobs.push_back(std::move(spec));
    }

    CampaignOptions copts;
    copts.threads = bench::campaign_threads();
    const CampaignResult campaign = CampaignRunner(copts).run(jobs);

    AsciiTable t("Delay-aware camouflaging of superblue-class circuits");
    t.header({"Circuit", "gates", "replaced", "% of gates", "baseline crit.",
              "final crit.", "overhead", "SAT attack"});

    double frac_sum = 0.0;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const JobResult& j = campaign.jobs[i];
        // STA verification of the zero-overhead claim: re-derive the same
        // seeded selection (cheap next to the attack) for the timing columns.
        const netlist::Netlist nl = netlist::build_benchmark(corpus[i].name);
        sta::DelayAwareOptions dopt;
        dopt.restrict_to_nand_nor = true;  // the camouflageable pool
        dopt.seed = 0x5b + i;
        const auto da = sta::delay_aware_select(nl, dopt);

        char pct[16];
        std::snprintf(pct, sizeof pct, "%.1f%%", da.fraction_replaced * 100);
        const double overhead =
            da.final_critical / da.baseline_critical - 1.0;
        char oh[16];
        std::snprintf(oh, sizeof oh, "%.2f%%", overhead * 100);
        std::string attack_cell;
        if (!j.error.empty())
            attack_cell = "error";
        else if (j.result.status == AttackResult::Status::Success)
            attack_cell = AsciiTable::runtime(j.result.seconds, false);
        else
            attack_cell = "t-o";
        t.row({corpus[i].name, std::to_string(nl.logic_gate_count()),
               std::to_string(j.protected_cells), pct,
               bench::eng(da.baseline_critical, "s"),
               bench::eng(da.final_critical, "s"), oh, attack_cell});
        frac_sum += da.fraction_replaced;
    }
    std::puts(t.render().c_str());
    std::printf("campaign: %zu jobs, %.1f s wall on %d thread(s)\n",
                campaign.jobs.size(), campaign.wall_seconds, campaign.threads);
    std::printf("average replaced fraction: %.1f%% (paper: 5-15%%), all at zero\n",
                frac_sum / corpus.size() * 100);
    std::puts("timing overhead; the protected designs hit the attack timeout —");
    std::puts("\"strong protection of industrial circuits without excessive PPA\".");
    return 0;
}
