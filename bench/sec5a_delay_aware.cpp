// E12 — Sec. V-A hybrid CMOS-GSHE study: "we replace CMOS gates in the
// non-critical paths with the GSHE-based primitive such that no delay
// overheads can be expected. On an average, we can camouflage 5-15% of all
// gates this way. Conducting SAT attacks on those protected designs, we
// observe that they cannot be resolved within 240 hours."
//
// Per superblue-class circuit: zero-overhead delay-aware selection, GSHE
// camouflaging, STA verification (no overhead), then the SAT attack at the
// scaled timeout.
#include <cstdio>

#include "attack/oracle.hpp"
#include "attack/sat_attack.hpp"
#include "bench_util.hpp"
#include "camo/cell_library.hpp"
#include "camo/protect.hpp"
#include "common/ascii_table.hpp"
#include "netlist/corpus.hpp"
#include "sta/delay_aware.hpp"

using namespace gshe;
using namespace gshe::attack;

int main() {
    bench::banner("SEC. V-A (hybrid)", "delay-aware zero-overhead GSHE camouflaging");
    const double timeout = bench::attack_timeout_s();

    AsciiTable t("Delay-aware camouflaging of superblue-class circuits");
    t.header({"Circuit", "gates", "replaced", "% of gates", "baseline crit.",
              "final crit.", "overhead", "SAT attack"});

    double frac_sum = 0.0;
    int rows = 0;
    for (const auto& entry : netlist::timing_corpus()) {
        const netlist::Netlist nl = netlist::build_benchmark(entry.name);
        sta::DelayAwareOptions dopt;
        dopt.restrict_to_nand_nor = true;  // the camouflageable pool
        dopt.seed = 0x5b + rows;
        const auto da = sta::delay_aware_select(nl, dopt);

        const auto prot = camo::apply_camouflage(nl, da.replaced, camo::gshe16(), 1);
        ExactOracle oracle(prot.netlist);
        AttackOptions opt;
        opt.timeout_seconds = timeout;
        const AttackResult res = sat_attack(prot.netlist, oracle, opt);

        char pct[16];
        std::snprintf(pct, sizeof pct, "%.1f%%", da.fraction_replaced * 100);
        const double overhead =
            da.final_critical / da.baseline_critical - 1.0;
        char oh[16];
        std::snprintf(oh, sizeof oh, "%.2f%%", overhead * 100);
        t.row({entry.name, std::to_string(nl.logic_gate_count()),
               std::to_string(da.replaced.size()), pct,
               bench::eng(da.baseline_critical, "s"),
               bench::eng(da.final_critical, "s"), oh,
               res.status == AttackResult::Status::Success
                   ? AsciiTable::runtime(res.seconds, false)
                   : "t-o"});
        frac_sum += da.fraction_replaced;
        ++rows;
        std::fflush(stdout);
    }
    std::puts(t.render().c_str());
    std::printf("average replaced fraction: %.1f%% (paper: 5-15%%), all at zero\n",
                frac_sum / rows * 100);
    std::puts("timing overhead; the protected designs hit the attack timeout —");
    std::puts("\"strong protection of industrial circuits without excessive PPA\".");
    return 0;
}
