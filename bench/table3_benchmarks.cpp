// E7 — Table III: characteristics of the synthesized benchmarks. The paper
// columns are quoted; our columns are measured from the seeded synthetic
// stand-ins actually used by the Table IV / Fig. 6 benches (see DESIGN.md
// for the substitution rationale and scale factors).
#include <cstdio>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "netlist/corpus.hpp"

using namespace gshe;
using namespace gshe::netlist;

int main() {
    bench::banner("TABLE III", "benchmark characteristics (paper vs stand-in)");

    AsciiTable t("italics: EPFL suite; bold: IBM superblue (paper notation)");
    t.header({"Benchmark", "Suite", "Paper in/out/gates", "Ours in/out/gates",
              "Scale", "Class"});
    for (const CorpusEntry& e : corpus_entries()) {
        const Netlist nl = build_benchmark(e.name);
        const auto gates = nl.logic_gate_count();
        char paper[64], ours[64], scale[32];
        std::snprintf(paper, sizeof paper, "%d / %d / %d", e.paper_inputs,
                      e.paper_outputs, e.paper_gates);
        std::snprintf(ours, sizeof ours, "%zu / %zu / %zu", nl.inputs().size(),
                      nl.outputs().size(), gates);
        std::snprintf(scale, sizeof scale, "1:%.0f",
                      static_cast<double>(e.paper_gates) /
                          static_cast<double>(gates));
        const char* cls = e.cls == CorpusClass::SatAttack  ? "SAT study"
                          : e.cls == CorpusClass::Timing   ? "timing study"
                                                           : "sequential";
        t.row({e.name, e.suite, paper, ours, scale, cls});
    }
    std::puts(t.render().c_str());
    return 0;
}
