// E13 — Sec. V-B: stochastic switching to hinder SAT attacks.
// "Consider a scenario where the GSHE switch is tuned for 95% accuracy.
// This implies that 5% of the patterns observed by the SAT attack are
// incorrect. We believe that most if not all proposed SAT attacks will fail
// in such scenarios."
//
// The experiment the paper argues but could not run: sweep the per-device
// accuracy and fire all three implemented attacks (SAT [8], Double DIP
// [12], AppSAT-style [11]) against the probabilistic oracle. The accuracy
// knob is physically grounded: it is the write-pulse-width choice of the
// lognormal delay model fit to the sLLGS Monte Carlo.
//
// The 4x3 {accuracy x attack} grid is one CampaignRunner job matrix over
// the "stochastic" defense; the shared protect_seed memorizes one gate
// selection across all accuracy rows.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "core/gshe_switch.hpp"
#include "core/stochastic.hpp"
#include "engine/campaign.hpp"
#include "netlist/corpus.hpp"

using namespace gshe;
using namespace gshe::attack;
using namespace gshe::engine;

namespace {

std::string outcome(const JobResult& j) {
    if (!j.error.empty()) return "error";
    const AttackResult& res = j.result;
    switch (res.status) {
        case AttackResult::Status::Success:
            if (res.key_exact) return "BROKEN (exact key)";
            {
                char buf[64];
                std::snprintf(buf, sizeof buf, "defeated (wrong key, %.1f%% err)",
                              res.key_error_rate * 100);
                return buf;
            }
        case AttackResult::Status::Inconsistent:
            return "defeated (inconsistent)";
        case AttackResult::Status::TimedOut:
            return "t-o";
        case AttackResult::Status::IterationCap:
            return "defeated (no convergence)";
    }
    return "?";
}

}  // namespace

int main() {
    bench::banner("SEC. V-B", "stochastic operation vs oracle-guided attacks");
    // The deterministic control row must have room to actually break the
    // circuit, so this study gets a larger floor than the Table IV default.
    const double timeout = std::max(bench::attack_timeout_s(), 15.0);

    // Physical grounding: pulse widths for each accuracy level.
    {
        const core::GsheSwitch device;
        Rng rng(0xacc);
        const auto samples = device.delay_samples(20e-6, 150, rng);
        std::vector<double> delays;
        for (const auto& s : samples)
            if (s) delays.push_back(*s);
        const auto model = core::SwitchingDelayModel::fit(delays);
        AsciiTable t("Write-pulse width per target accuracy (from sLLGS fit)");
        t.header({"accuracy", "pulse width", "mean delay"});
        for (double acc : {0.90, 0.95, 0.99, 0.999})
            t.row({AsciiTable::num(acc * 100, 4) + "%",
                   bench::eng(model.pulse_for_accuracy(acc), "s"),
                   bench::eng(model.mean_delay(), "s")});
        std::puts(t.render().c_str());
    }

    const std::vector<double> accuracies = {1.0, 0.99, 0.95, 0.90};
    const std::vector<std::string> attacks = {"sat", "double_dip", "appsat"};
    std::vector<DefenseConfig> defenses;
    for (const double acc : accuracies) {
        DefenseConfig d;
        d.kind = "stochastic";
        d.fraction = 0.10;
        d.accuracy = acc;
        d.protect_seed = 0x5b2;  // one memorized selection for every row
        defenses.push_back(std::move(d));
    }
    AttackOptions opt;
    opt.timeout_seconds = timeout;
    opt.appsat_error_threshold = 0.01;  // PAC tolerance
    const auto jobs = CampaignRunner::cross_product({"ex1010"}, defenses,
                                                    attacks, {1}, opt);

    CampaignOptions copts;
    copts.threads = bench::campaign_threads();
    const CampaignResult campaign = CampaignRunner(copts).run(jobs);

    const JobResult& first = campaign.jobs.front();
    std::printf("circuit: ex1010 stand-in, %zu camouflaged 16-function cells, "
                "%d key bits\n\n",
                first.protected_cells, first.key_bits);

    AsciiTable t("Attack outcome vs device accuracy (timeout " +
                 AsciiTable::num(timeout, 3) + " s)");
    t.header({"accuracy", "SAT attack [8]", "Double DIP [12]", "AppSAT-style [11]"});
    // cross_product order: defense-major, then attack.
    for (std::size_t di = 0; di < accuracies.size(); ++di)
        t.row({AsciiTable::num(accuracies[di] * 100, 4) + "%",
               outcome(campaign.jobs[di * attacks.size() + 0]),
               outcome(campaign.jobs[di * attacks.size() + 1]),
               outcome(campaign.jobs[di * attacks.size() + 2])});
    std::puts(t.render().c_str());
    std::printf("campaign: %zu jobs, %.1f s wall on %d thread(s)\n",
                campaign.jobs.size(), campaign.wall_seconds, campaign.threads);
    std::puts("At accuracy 100% every attack recovers the exact key (control");
    std::puts("row); any stochasticity below that defeats all three — they end");
    std::puts("inconsistent, non-convergent, or settle on a provably wrong key,");
    std::puts("exactly the failure the paper predicts (footnote 6 for AppSAT).");
    return 0;
}
