// E13 — Sec. V-B: stochastic switching to hinder SAT attacks.
// "Consider a scenario where the GSHE switch is tuned for 95% accuracy.
// This implies that 5% of the patterns observed by the SAT attack are
// incorrect. We believe that most if not all proposed SAT attacks will fail
// in such scenarios."
//
// The experiment the paper argues but could not run: sweep the per-device
// accuracy and fire all three implemented attacks (SAT [8], Double DIP
// [12], AppSAT-style [11]) against the probabilistic oracle. The accuracy
// knob is physically grounded: it is the write-pulse-width choice of the
// lognormal delay model fit to the sLLGS Monte Carlo.
#include <cstdio>

#include "attack/appsat.hpp"
#include "attack/double_dip.hpp"
#include "attack/oracle.hpp"
#include "attack/sat_attack.hpp"
#include "bench_util.hpp"
#include "camo/cell_library.hpp"
#include "camo/protect.hpp"
#include "common/ascii_table.hpp"
#include "core/gshe_switch.hpp"
#include "core/stochastic.hpp"
#include "netlist/corpus.hpp"

using namespace gshe;
using namespace gshe::attack;

namespace {

std::string outcome(const AttackResult& res) {
    switch (res.status) {
        case AttackResult::Status::Success:
            if (res.key_exact) return "BROKEN (exact key)";
            {
                char buf[64];
                std::snprintf(buf, sizeof buf, "defeated (wrong key, %.1f%% err)",
                              res.key_error_rate * 100);
                return buf;
            }
        case AttackResult::Status::Inconsistent:
            return "defeated (inconsistent)";
        case AttackResult::Status::TimedOut:
            return "t-o";
        case AttackResult::Status::IterationCap:
            return "defeated (no convergence)";
    }
    return "?";
}

}  // namespace

int main() {
    bench::banner("SEC. V-B", "stochastic operation vs oracle-guided attacks");
    // The deterministic control row must have room to actually break the
    // circuit, so this study gets a larger floor than the Table IV default.
    const double timeout = std::max(bench::attack_timeout_s(), 15.0);

    // Physical grounding: pulse widths for each accuracy level.
    {
        const core::GsheSwitch device;
        Rng rng(0xacc);
        const auto samples = device.delay_samples(20e-6, 150, rng);
        std::vector<double> delays;
        for (const auto& s : samples)
            if (s) delays.push_back(*s);
        const auto model = core::SwitchingDelayModel::fit(delays);
        AsciiTable t("Write-pulse width per target accuracy (from sLLGS fit)");
        t.header({"accuracy", "pulse width", "mean delay"});
        for (double acc : {0.90, 0.95, 0.99, 0.999})
            t.row({AsciiTable::num(acc * 100, 4) + "%",
                   bench::eng(model.pulse_for_accuracy(acc), "s"),
                   bench::eng(model.mean_delay(), "s")});
        std::puts(t.render().c_str());
    }

    const netlist::Netlist nl = netlist::build_benchmark("ex1010");
    const auto sel = camo::select_gates(nl, 0.10, 0x5b2);
    const auto prot = camo::apply_camouflage(nl, sel, camo::gshe16(), 0x5b2);
    std::printf("circuit: ex1010 stand-in, %zu camouflaged 16-function cells, "
                "%d key bits\n\n",
                prot.netlist.camo_cells().size(), prot.netlist.key_bit_count());

    AsciiTable t("Attack outcome vs device accuracy (timeout " +
                 AsciiTable::num(timeout, 3) + " s)");
    t.header({"accuracy", "SAT attack [8]", "Double DIP [12]", "AppSAT-style [11]"});

    for (const double acc : {1.0, 0.99, 0.95, 0.90}) {
        AttackOptions opt;
        opt.timeout_seconds = timeout;

        StochasticOracle o1(prot.netlist, acc, 0xA1);
        const AttackResult r1 = sat_attack(prot.netlist, o1, opt);
        StochasticOracle o2(prot.netlist, acc, 0xA2);
        const AttackResult r2 = double_dip_attack(prot.netlist, o2, opt);
        StochasticOracle o3(prot.netlist, acc, 0xA3);
        AppSatOptions ao;
        ao.base = opt;
        ao.error_threshold = 0.01;  // PAC tolerance
        const AttackResult r3 = appsat_attack(prot.netlist, o3, ao);

        t.row({AsciiTable::num(acc * 100, 4) + "%", outcome(r1), outcome(r2),
               outcome(r3)});
        std::fflush(stdout);
    }
    std::puts(t.render().c_str());
    std::puts("At accuracy 100% every attack recovers the exact key (control");
    std::puts("row); any stochasticity below that defeats all three — they end");
    std::puts("inconsistent, non-convergent, or settle on a provably wrong key,");
    std::puts("exactly the failure the paper predicts (footnote 6 for AppSAT).");
    return 0;
}
