// E4 — Table II: comparison of emerging-device security primitives.
// Literature rows are constants from the cited papers; the "This work" row
// is computed live from the device model (read-out circuit + sLLGS Monte
// Carlo), exactly as the paper derives it.
#include <cstdio>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "core/characterization.hpp"

using namespace gshe;
using namespace gshe::core;

int main() {
    bench::banner("TABLE II", "comparison of emerging-device primitives");

    const GsheSwitch device;
    const auto trials = static_cast<std::size_t>(env_long("GSHE_FIG4_RUNS", 800));
    const DeviceMetrics ours = characterize_device(device, 20e-6, trials, 0x7ab1e2);

    AsciiTable t("Table II (literature rows quoted from the respective papers)");
    t.header({"Publication", "# Functions", "Energy", "Power", "Delay"});
    t.row({"[19] SiNW NAND/NOR", "2", "0.05-0.1 fJ", "1.13-1.77 uW", "42-56 ps"});
    t.row({"[24, a] ASL NAND/NOR/AND/OR", "4", "0.58 pJ", "351.52 uW", "1.65 ns"});
    t.row({"[24, b] ASL XOR/XNOR", "2", "1.16 pJ", "351.52 uW", "3.3 ns"});
    t.row({"[24, c] ASL INV/BUF", "2", "0.13 pJ", "342.11 uW", "0.38 ns"});
    t.row({"[30] DWM AND/OR", "2", "67.72 fJ", "60.46 uW", "1.12 ns"});
    t.row({"[20] DWM 7-function", "7", "N/A", "N/A", "N/A"});
    t.row({"[23] GSHE AND/OR/NAND/NOR", "4", "N/A", "N/A", "N/A"});
    t.row({"[25] STT 6-function", "6", "N/A", "N/A", "N/A"});
    t.row({"This work (measured from model)", std::to_string(ours.functions),
           bench::eng(ours.energy, "J"), bench::eng(ours.power, "W"),
           bench::eng(ours.delay, "s")});
    t.row({"This work (paper row)", "16", "0.33 fJ", "0.2125 uW", "1.55 ns"});
    std::puts(t.render().c_str());

    std::puts("Shape check: the GSHE primitive cloaks all 16 functions (4-8x the");
    std::puts("prior art) at orders of magnitude lower power than the spin-logic");
    std::puts("alternatives, with its delay its only weak metric — motivating the");
    std::puts("delay-aware deployment of Sec. V-A.");
    return 0;
}
