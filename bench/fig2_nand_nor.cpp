// E5 — Fig. 2: the current-centric truth tables for the NAND and NOR
// configurations of the primitive. Logic 1/0 is an output current of +I/-I;
// X is the tie-breaking control current.
#include <cstdio>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "core/primitive.hpp"

using namespace gshe;
using namespace gshe::core;

namespace {
const char* current_of(bool logic) { return logic ? "+I" : "-I"; }
}  // namespace

int main() {
    bench::banner("FIG. 2", "current-centric truth tables for NAND / NOR");

    for (const Bool2 fn : {Bool2::NAND(), Bool2::NOR()}) {
        const Primitive prim(fn);
        AsciiTable t(std::string(fn.name()) +
                     "  — terminal assignment " + prim.config().to_string());
        t.header({"A", "B", "X", "OUT"});
        // X is the third wire's constant contribution in this configuration.
        const bool x_plus =
            prim.config().inputs[2] == CurrentSource::PlusI;
        for (int a = 0; a < 2; ++a)
            for (int b = 0; b < 2; ++b)
                t.row({current_of(a != 0), current_of(b != 0),
                       x_plus ? "+I" : "-I",
                       current_of(prim.eval(a != 0, b != 0))});
        std::puts(t.render().c_str());
    }

    std::puts("As in the paper: NAND and NOR share identical signal wiring and");
    std::puts("differ only in the polarity of the tie-breaking control current X —");
    std::puts("indistinguishable to layout-level reverse engineering.");
    return 0;
}
