#pragma once
// Shared plumbing for the paper-reproduction benchmark binaries.
//
// Every binary runs with no arguments and completes on a laptop in seconds
// to a few minutes; environment variables scale the workload back up to
// paper scale:
//   GSHE_TIMEOUT_S     per-attack timeout in seconds (default 2; paper 48 h)
//   GSHE_FIG4_RUNS     Monte-Carlo transients per current (default 1500;
//                      paper 100 000)
//   GSHE_STT_RUNS      repetitions of the Sec. II STT-LUT experiment
//                      (default 10; paper 100)
//   GSHE_TABLE4_FULL   set to 1 to run the full 7-circuit Table IV grid
//   GSHE_THREADS       campaign worker threads (default 1: the tables report
//                      wall-clock runtimes, and parallel jobs contend for
//                      cache/memory; set 0 = all cores when only the
//                      success/t-o classification matters)

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/report.hpp"
#include "engine/campaign.hpp"

namespace gshe::bench {

inline double attack_timeout_s() { return env_double("GSHE_TIMEOUT_S", 5.0); }

/// Worker threads for CampaignRunner-based benches (0 = all cores).
/// Defaults to 1 so reported per-attack runtimes are measured without
/// cross-job contention, matching the paper's one-attack-at-a-time setup.
inline int campaign_threads() {
    return static_cast<int>(env_long("GSHE_THREADS", 1));
}

/// Compact status cell shared by the campaign-based bench tables:
/// "error" | "exact" (right key) | "wrong" (converged on a wrong key) |
/// "t-o" (budget exhausted / no convergence).
inline std::string status_cell(const engine::JobResult& j) {
    if (!j.error.empty()) return "error";
    if (j.result.status == attack::AttackResult::Status::Success)
        return j.result.key_exact ? "exact" : "wrong";
    return "t-o";
}

/// Timing hook for solver/backend benches: renders one JSON record per
/// campaign job — wall-seconds, status and solver work keyed by the job's
/// SAT backend (plus an optional per-job label such as the ablation config
/// name) — and writes it to `path` (e.g. "BENCH_solver.json"). These files
/// seed the perf trajectory: successive runs are comparable by (label,
/// backend) key. Wall-clock fields are measured, not derived, so the file
/// is *not* byte-reproducible.
inline void write_solver_bench_json(const std::string& path,
                                    const engine::CampaignResult& campaign,
                                    const std::vector<std::string>& labels = {}) {
    JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("solver");
    w.key("threads");
    w.value(static_cast<std::int64_t>(campaign.threads));
    w.key("wall_seconds");
    w.value(campaign.wall_seconds);
    w.key("jobs");
    w.begin_array();
    for (std::size_t i = 0; i < campaign.jobs.size(); ++i) {
        const engine::JobResult& j = campaign.jobs[i];
        w.begin_object();
        if (i < labels.size()) {
            w.key("label");
            w.value(labels[i]);
        }
        w.key("circuit");
        w.value(j.circuit);
        w.key("attack");
        w.value(j.attack);
        w.key("solver_backend");
        w.value(j.solver_backend);
        w.key("status");
        w.value(j.error.empty()
                    ? attack::AttackResult::status_name(j.result.status)
                    : "error");
        w.key("attack_seconds");
        w.value(j.result.seconds);
        w.key("job_seconds");
        w.value(j.job_seconds);
        w.key("iterations");
        w.value(static_cast<std::uint64_t>(j.result.iterations));
        w.key("conflicts");
        w.value(j.result.solver_stats.conflicts);
        w.key("decisions");
        w.value(j.result.solver_stats.decisions);
        w.key("propagations");
        w.value(j.result.solver_stats.propagations);
        w.key("restarts");
        w.value(j.result.solver_stats.restarts);
        w.key("inprocessings");
        w.value(j.result.solver_stats.inprocessings);
        w.key("vivified_lits");
        w.value(j.result.solver_stats.vivified_lits);
        w.key("xors_recovered");
        w.value(j.result.solver_stats.xors_recovered);
        w.key("eliminated_vars");
        w.value(j.result.solver_stats.eliminated_vars);
        w.key("gc_runs");
        w.value(j.result.solver_stats.gc_runs);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    write_text_file(path, w.str() + "\n");
    std::printf("wrote %s (%zu jobs)\n", path.c_str(), campaign.jobs.size());
}

/// Perf-trajectory hook for the portfolio SAT backend: one record per
/// portfolio width, each carrying the per-instance attack wall-seconds and
/// the geomean speedup against the backend-"internal" baseline run on the
/// identical job matrix. Successive runs are comparable by the "width" key.
/// Wall-clock fields are measured, not derived, so the file is *not*
/// byte-reproducible.
struct PortfolioWidthSummary {
    int width = 1;
    bool race = true;
    double wall_seconds = 0.0;              ///< whole-campaign wall
    std::vector<double> attack_seconds;     ///< per instance, matrix order
    std::vector<std::string> statuses;      ///< per instance, matrix order
    double geomean_speedup = 1.0;           ///< vs internal, per-instance
};

inline void write_portfolio_bench_json(
    const std::string& path, const std::vector<std::string>& instance_labels,
    const std::vector<double>& internal_seconds,
    const std::vector<PortfolioWidthSummary>& widths, unsigned host_cpus) {
    JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("portfolio");
    // Wall-clock racing needs one core per worker to pay off; on a host
    // with fewer cores the workers time-slice and the sweep measures the
    // multiplexing penalty instead. Recorded so trajectory comparisons
    // only pair runs from comparable hosts.
    w.key("host_cpus");
    w.value(static_cast<std::int64_t>(host_cpus));
    w.key("instances");
    w.begin_array();
    for (const std::string& label : instance_labels) w.value(label);
    w.end_array();
    w.key("internal_seconds");
    w.begin_array();
    for (const double s : internal_seconds) w.value(s);
    w.end_array();
    w.key("widths");
    w.begin_array();
    for (const PortfolioWidthSummary& s : widths) {
        w.begin_object();
        w.key("width");
        w.value(static_cast<std::int64_t>(s.width));
        w.key("race");
        w.value(s.race);
        w.key("wall_seconds");
        w.value(s.wall_seconds);
        w.key("attack_seconds");
        w.begin_array();
        for (const double sec : s.attack_seconds) w.value(sec);
        w.end_array();
        w.key("statuses");
        w.begin_array();
        for (const std::string& st : s.statuses) w.value(st);
        w.end_array();
        w.key("geomean_speedup");
        w.value(s.geomean_speedup);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    write_text_file(path, w.str() + "\n");
    std::printf("wrote %s (%zu widths)\n", path.c_str(), widths.size());
}

/// Perf-trajectory hook for the oracle query memo: one record per cache
/// mode (off/on), each summing the campaign's logical oracle batches, the
/// batches that actually reached the simulator, and memo hit/miss counts,
/// plus wall-seconds. Successive runs are comparable by the "mode" key.
/// Wall-clock fields are measured, not derived, so the file is *not*
/// byte-reproducible; the count fields are.
struct OracleCacheModeSummary {
    std::string mode;                  ///< "off" | "on"
    double wall_seconds = 0.0;
    std::uint64_t batches_logical = 0;    ///< queries attacks issued
    std::uint64_t batches_evaluated = 0;  ///< queries that paid a simulation
    std::uint64_t patterns_logical = 0;   ///< per-job OracleStats::patterns
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t bypassed = 0;
};

inline OracleCacheModeSummary summarize_cache_mode(
    const std::string& mode, const engine::CampaignResult& campaign) {
    OracleCacheModeSummary s;
    s.mode = mode;
    s.wall_seconds = campaign.wall_seconds;
    for (const engine::JobResult& j : campaign.jobs) {
        s.batches_logical += j.oracle_cache.logical();
        s.batches_evaluated += j.oracle_cache.evaluated();
        s.patterns_logical += j.oracle_stats.patterns;
        s.cache_hits += j.oracle_cache.hits;
        s.cache_misses += j.oracle_cache.misses;
        s.bypassed += j.oracle_cache.bypassed;
    }
    return s;
}

inline void write_oracle_cache_bench_json(
    const std::string& path, const std::vector<OracleCacheModeSummary>& modes,
    std::size_t jobs, std::size_t shared_groups) {
    JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("oracle_cache");
    w.key("jobs");
    w.value(static_cast<std::uint64_t>(jobs));
    w.key("shared_groups");
    w.value(static_cast<std::uint64_t>(shared_groups));
    w.key("modes");
    w.begin_array();
    for (const OracleCacheModeSummary& s : modes) {
        w.begin_object();
        w.key("mode");
        w.value(s.mode);
        w.key("wall_seconds");
        w.value(s.wall_seconds);
        w.key("oracle_batches_logical");
        w.value(s.batches_logical);
        w.key("oracle_batches_evaluated");
        w.value(s.batches_evaluated);
        w.key("oracle_patterns_logical");
        w.value(s.patterns_logical);
        w.key("cache_hits");
        w.value(s.cache_hits);
        w.key("cache_misses");
        w.value(s.cache_misses);
        w.key("bypassed");
        w.value(s.bypassed);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    write_text_file(path, w.str() + "\n");
    std::printf("wrote %s (%zu modes)\n", path.c_str(), modes.size());
}

/// Perf-trajectory hook for the CNF encoder ablation: the identical job
/// matrix runs once per encoder mode, and each job record carries the
/// CNF-emission counters next to the measured attack seconds. The headline
/// "per_iteration_reduction_geomean" (legacy vs compact agreement CNF size
/// per DIP iteration) is derived from deterministic counters and is the
/// gating metric; wall-clock fields are measured, not derived, so those are
/// *not* byte-reproducible.
inline void write_encoder_bench_json(const std::string& path,
                                     const std::vector<std::string>& labels,
                                     const engine::CampaignResult& legacy,
                                     const engine::CampaignResult& compact,
                                     double per_iteration_reduction_geomean,
                                     double wall_speedup_geomean) {
    JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("encoder");
    w.key("jobs");
    w.value(static_cast<std::uint64_t>(legacy.jobs.size()));
    w.key("modes");
    w.begin_array();
    const engine::CampaignResult* campaigns[2] = {&legacy, &compact};
    const char* names[2] = {"legacy", "compact"};
    for (int m = 0; m < 2; ++m) {
        const engine::CampaignResult& campaign = *campaigns[m];
        w.begin_object();
        w.key("mode");
        w.value(names[m]);
        w.key("wall_seconds");
        w.value(campaign.wall_seconds);
        w.key("jobs");
        w.begin_array();
        for (std::size_t i = 0; i < campaign.jobs.size(); ++i) {
            const engine::JobResult& j = campaign.jobs[i];
            const auto& es = j.result.encoder_stats;
            w.begin_object();
            if (i < labels.size()) {
                w.key("label");
                w.value(labels[i]);
            }
            w.key("status");
            w.value(status_cell(j));
            w.key("iterations");
            w.value(static_cast<std::uint64_t>(j.result.iterations));
            w.key("attack_seconds");
            w.value(j.result.seconds);
            w.key("vars");
            w.value(es.vars);
            w.key("clauses");
            w.value(es.clauses);
            w.key("gates_folded");
            w.value(es.gates_folded);
            w.key("hash_hits");
            w.value(es.hash_hits);
            w.key("agreements");
            w.value(es.agreements);
            w.key("agreement_vars");
            w.value(es.agreement_vars);
            w.key("agreement_clauses");
            w.value(es.agreement_clauses);
            w.key("cone_gates");
            w.value(es.cone_gates);
            w.key("sim_gates");
            w.value(es.sim_gates);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.key("per_iteration_reduction_geomean");
    w.value(per_iteration_reduction_geomean);
    w.key("wall_speedup_geomean");
    w.value(wall_speedup_geomean);
    w.end_object();
    write_text_file(path, w.str() + "\n");
    std::printf("wrote %s (%zu jobs x 2 modes)\n", path.c_str(),
                legacy.jobs.size());
}

/// BENCH_extraction.json: fresh vs in-place key extraction on the same job
/// matrix. Per-job rows carry the extraction telemetry (in-place solves,
/// re-encode work avoided, agreement-only growth check inputs); the
/// headline geomeans cover the settlement-heavy AppSAT axis and the whole
/// matrix. Wall-clock fields are measured, not byte-reproducible.
inline void write_extraction_bench_json(
    const std::string& path, const std::vector<std::string>& labels,
    const engine::CampaignResult& fresh, const engine::CampaignResult& inplace,
    double appsat_speedup_geomean, double wall_speedup_geomean) {
    JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("extraction");
    w.key("jobs");
    w.value(static_cast<std::uint64_t>(fresh.jobs.size()));
    w.key("modes");
    w.begin_array();
    const engine::CampaignResult* campaigns[2] = {&fresh, &inplace};
    const char* names[2] = {"fresh", "inplace"};
    for (int m = 0; m < 2; ++m) {
        const engine::CampaignResult& campaign = *campaigns[m];
        w.begin_object();
        w.key("mode");
        w.value(names[m]);
        w.key("wall_seconds");
        w.value(campaign.wall_seconds);
        w.key("jobs");
        w.begin_array();
        for (std::size_t i = 0; i < campaign.jobs.size(); ++i) {
            const engine::JobResult& j = campaign.jobs[i];
            const auto& es = j.result.encoder_stats;
            w.begin_object();
            if (i < labels.size()) {
                w.key("label");
                w.value(labels[i]);
            }
            w.key("attack");
            w.value(j.attack);
            w.key("status");
            w.value(status_cell(j));
            w.key("iterations");
            w.value(static_cast<std::uint64_t>(j.result.iterations));
            w.key("attack_seconds");
            w.value(j.result.seconds);
            w.key("vars");
            w.value(es.vars);
            w.key("clauses");
            w.value(es.clauses);
            w.key("agreements");
            w.value(es.agreements);
            w.key("agreement_vars");
            w.value(es.agreement_vars);
            w.key("agreement_clauses");
            w.value(es.agreement_clauses);
            w.key("inplace_extractions");
            w.value(j.result.inplace_extractions);
            w.key("reencode_vars_avoided");
            w.value(j.result.reencode_vars_avoided);
            w.key("reencode_clauses_avoided");
            w.value(j.result.reencode_clauses_avoided);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.key("appsat_speedup_geomean");
    w.value(appsat_speedup_geomean);
    w.key("wall_speedup_geomean");
    w.value(wall_speedup_geomean);
    w.end_object();
    write_text_file(path, w.str() + "\n");
    std::printf("wrote %s (%zu jobs x 2 modes)\n", path.c_str(),
                fresh.jobs.size());
}

/// BENCH_sim.json: the levelized bit-sliced simulation engine ablation.
/// Per-circuit rows pair deterministic plan counters (full vs frontier step
/// counts, support input counts — the gating metrics) with measured sweep
/// timings (reference walk vs plan kernel, single- vs multi-word, full vs
/// cone-restricted per-DIP sweeps — trajectory data, never gated). The
/// optional dip-support section carries a full-vs-cone campaign on the same
/// matrix. Wall-clock fields are measured, not byte-reproducible; the
/// counter fields are.
struct SimCircuitSummary {
    std::string name;
    std::uint64_t gates = 0;
    std::uint64_t camo_cells = 0;
    std::uint64_t inputs = 0;
    std::uint64_t support_inputs = 0;   ///< PIs the cone mode keeps free
    std::uint64_t full_steps = 0;       ///< full SimPlan steps
    std::uint64_t frontier_steps = 0;   ///< cone-restricted sub-plan steps
    double reference_sweep_s = 0.0;     ///< per 64-pattern reference walk
    double kernel_sweep_s = 0.0;        ///< per 64-pattern plan sweep
    double single_word_s = 0.0;         ///< 1024 patterns as 16 x run()
    double multi_word_s = 0.0;          ///< 1024 patterns as one run_words(16)
    double full_dip_s = 0.0;            ///< per-DIP full run_single_all
    double frontier_dip_s = 0.0;        ///< per-DIP run_frontier_single
};

inline void write_sim_bench_json(const std::string& path,
                                 const std::vector<SimCircuitSummary>& circuits,
                                 double step_reduction_geomean,
                                 double kernel_speedup_geomean,
                                 double multiword_speedup_geomean,
                                 double cone_speedup_geomean,
                                 const std::vector<std::string>& labels,
                                 const engine::CampaignResult& support_full,
                                 const engine::CampaignResult& support_cone) {
    JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("sim");
    w.key("circuits");
    w.begin_array();
    for (const SimCircuitSummary& c : circuits) {
        w.begin_object();
        w.key("name");
        w.value(c.name);
        w.key("gates");
        w.value(c.gates);
        w.key("camo_cells");
        w.value(c.camo_cells);
        w.key("inputs");
        w.value(c.inputs);
        w.key("support_inputs");
        w.value(c.support_inputs);
        w.key("full_steps");
        w.value(c.full_steps);
        w.key("frontier_steps");
        w.value(c.frontier_steps);
        w.key("reference_sweep_s");
        w.value(c.reference_sweep_s);
        w.key("kernel_sweep_s");
        w.value(c.kernel_sweep_s);
        w.key("single_word_s");
        w.value(c.single_word_s);
        w.key("multi_word_s");
        w.value(c.multi_word_s);
        w.key("full_dip_s");
        w.value(c.full_dip_s);
        w.key("frontier_dip_s");
        w.value(c.frontier_dip_s);
        w.end_object();
    }
    w.end_array();
    w.key("per_dip_step_reduction_geomean");
    w.value(step_reduction_geomean);
    w.key("kernel_speedup_geomean");
    w.value(kernel_speedup_geomean);
    w.key("multiword_speedup_geomean");
    w.value(multiword_speedup_geomean);
    w.key("cone_speedup_geomean");
    w.value(cone_speedup_geomean);
    w.key("dip_support_modes");
    w.begin_array();
    const engine::CampaignResult* campaigns[2] = {&support_full, &support_cone};
    const char* names[2] = {"full", "cone"};
    for (int m = 0; m < 2; ++m) {
        const engine::CampaignResult& campaign = *campaigns[m];
        w.begin_object();
        w.key("mode");
        w.value(names[m]);
        w.key("wall_seconds");
        w.value(campaign.wall_seconds);
        w.key("jobs");
        w.begin_array();
        for (std::size_t i = 0; i < campaign.jobs.size(); ++i) {
            const engine::JobResult& j = campaign.jobs[i];
            w.begin_object();
            if (i < labels.size()) {
                w.key("label");
                w.value(labels[i]);
            }
            w.key("status");
            w.value(status_cell(j));
            w.key("iterations");
            w.value(static_cast<std::uint64_t>(j.result.iterations));
            w.key("oracle_patterns");
            w.value(j.result.oracle_patterns);
            w.key("attack_seconds");
            w.value(j.result.seconds);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    write_text_file(path, w.str() + "\n");
    std::printf("wrote %s (%zu circuits)\n", path.c_str(), circuits.size());
}

inline void banner(const char* id, const char* title) {
    std::printf("\n================================================================\n");
    std::printf("%s — %s\n", id, title);
    std::printf("(reproduction of: Patnaik et al., \"Advancing Hardware Security\n");
    std::printf(" Using Polymorphic and Stochastic Spin-Hall Effect Devices\", DATE 2018)\n");
    std::printf("================================================================\n");
}

inline std::string eng(double v, const char* unit) {
    char buf[64];
    if (v == 0.0) {
        std::snprintf(buf, sizeof buf, "0 %s", unit);
    } else if (v >= 1.0) {
        std::snprintf(buf, sizeof buf, "%.4g %s", v, unit);
    } else if (v >= 1e-3) {
        std::snprintf(buf, sizeof buf, "%.4g m%s", v * 1e3, unit);
    } else if (v >= 1e-6) {
        std::snprintf(buf, sizeof buf, "%.4g u%s", v * 1e6, unit);
    } else if (v >= 1e-9) {
        std::snprintf(buf, sizeof buf, "%.4g n%s", v * 1e9, unit);
    } else if (v >= 1e-12) {
        std::snprintf(buf, sizeof buf, "%.4g p%s", v * 1e12, unit);
    } else {
        std::snprintf(buf, sizeof buf, "%.4g f%s", v * 1e15, unit);
    }
    return buf;
}

}  // namespace gshe::bench
