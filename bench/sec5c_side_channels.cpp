// E14 — Sec. V-C: resistance against reverse engineering and side-channel
// attacks, quantified with the four models of src/sidechannel:
//   1. photonic emission analysis (CMOS leaks, spin logic does not)
//   2. EM read-out vs runtime polymorphism (50 ns/pixel vs 1.55 ns switch)
//   3. magnetic-probe fault injection (uncontrollable collateral faults)
//   4. temperature attacks on retention (stochastic, memoryless flips)
#include <cstdio>

#include "bench_util.hpp"
#include "camo/locking.hpp"
#include "common/ascii_table.hpp"
#include "netlist/generator.hpp"
#include "sidechannel/em_imaging.hpp"
#include "sidechannel/magnetic.hpp"
#include "sidechannel/photonic.hpp"
#include "sidechannel/temperature.hpp"

using namespace gshe;
using namespace gshe::sidechannel;

int main() {
    bench::banner("SEC. V-C", "side-channel and invasive-attack models");

    // ---- 1. photonic -----------------------------------------------------
    {
        netlist::RandomSpec spec;
        spec.n_inputs = 14;
        spec.n_outputs = 10;
        spec.n_gates = 120;
        spec.seed = 0x5c;
        const auto nl = netlist::random_circuit(spec);
        const auto lc = camo::lock_epic_xor(nl, 16, 0x5c);

        AsciiTable t("1. Photonic template attack on 16 key bits vs imaging cycles");
        t.header({"cycles", "CMOS key logic", "GSHE key logic (no emission)"});
        for (const std::size_t cycles : {64u * 4u, 64u * 16u, 64u * 64u}) {
            const auto cmos = photonic_template_attack(
                lc.netlist, lc.key_inputs, lc.correct_key, cycles, false, {}, 7);
            const auto spin = photonic_template_attack(
                lc.netlist, lc.key_inputs, lc.correct_key, cycles, true, {}, 7);
            t.row({std::to_string(cycles),
                   AsciiTable::num(cmos.recovery_rate * 100, 3) + "% bits",
                   AsciiTable::num(spin.recovery_rate * 100, 3) + "% bits"});
        }
        std::puts(t.render().c_str());
        std::puts("CMOS emission converges on the key; the GSHE cone emits nothing");
        std::puts("and recovery stays at coin-flip level.\n");
    }

    // ---- 2. EM read-out ----------------------------------------------------
    {
        AsciiTable t("2. SEM read-out (50 ns/pixel [16]) vs runtime polymorphism");
        t.header({"re-assignment interval", "per-cell read success",
                  "10^4-cell chip success", "imaging time (10^4 cells)"});
        for (const double interval : {1.0, 1e-3, 1e-6, 100e-9}) {
            EmImagingModel m{};
            m.repoly_interval = interval;
            char chip[32];
            std::snprintf(chip, sizeof chip, "%.3g", chip_read_success(m, 10000));
            t.row({bench::eng(interval, "s"),
                   AsciiTable::num(cell_read_success(m) * 100, 4) + "%", chip,
                   bench::eng(total_read_time(m, 10000), "s")});
        }
        std::puts(t.render().c_str());
        std::puts("A static chip reads out perfectly; once functions are re-assigned");
        std::puts("anywhere near the device's 1.55 ns switching scale, whole-chip");
        std::puts("read-out probability collapses (footnote 7).\n");
    }

    // ---- 3. magnetic probe -------------------------------------------------
    {
        const MagneticProbeModel m{};
        netlist::RandomSpec spec;
        spec.n_inputs = 16;
        spec.n_outputs = 12;
        spec.n_gates = 160;
        spec.seed = 0x5d;
        const auto nl = netlist::random_circuit(spec);
        const auto res = magnetic_fault_campaign(nl, m, 60, 0x5d);

        AsciiTable t("3. Magnetic-probe fault injection");
        t.header({"metric", "value"});
        t.row({"probe tip field", bench::eng(m.probe_field, "A/m")});
        t.row({"device switching field", bench::eng(m.switching_field, "A/m")});
        t.row({"flip radius", bench::eng(effective_flip_radius(m), "m")});
        t.row({"expected collateral faults/shot",
               AsciiTable::num(expected_collateral_faults(m), 3)});
        t.row({"P(clean single-target fault)",
               AsciiTable::num(clean_single_fault_probability(m, 1, 20000), 3)});
        t.row({"campaign: mean faults/shot", AsciiTable::num(res.mean_faults_per_shot, 3)});
        t.row({"campaign: single-fault shots",
               AsciiTable::num(res.single_fault_shots * 100, 3) + "%"});
        t.row({"campaign: mean output corruption",
               AsciiTable::num(res.mean_output_error * 100, 3) + "%"});
        std::puts(t.render().c_str());
        std::puts("A probe flip cannot be localized to one device: sensitization-");
        std::puts("style attacks [2] lose their prerequisite of controlled faults.\n");
    }

    // ---- 4. temperature ------------------------------------------------------
    {
        const RetentionModel m{};
        AsciiTable t("4. Retention vs temperature (Neel-Arrhenius)");
        t.header({"T", "barrier (kT)", "retention time", "P(survive 1 ms)"});
        for (const double temp : {300.0, 350.0, 400.0, 450.0}) {
            t.row({AsciiTable::num(temp, 3) + " K",
                   AsciiTable::num(m.thermal_stability(temp), 3),
                   bench::eng(m.retention_time(temp), "s"),
                   AsciiTable::num(m.survival_probability(temp, 1e-3), 4)});
        }
        std::puts(t.render().c_str());
        std::printf("flip-time CV at 400 K: %.3f (1.0 = exponential/memoryless)\n",
                    flip_time_cv(m, 400.0, 20000, 3));
        std::puts("Heating shortens retention but the induced flips are Poisson —");
        std::puts("stochastic disturbances, not a controllable write channel.");
    }
    return 0;
}
