// Ablation: fresh-solver key extraction vs in-place extraction on the live
// miter solver. The same {circuit x attack x seed} jobs run once per
// extraction mode; "fresh" re-encodes the full circuit plus the entire DIP
// history into a throwaway solver at every extraction, while "inplace"
// solves the existing miter under the negated difference selector and pays
// nothing. The settlement-heavy axis is AppSAT, which extracts a candidate
// key every settle_every iterations — exactly the workload the selector
// literal was built for; plain SAT extracts once, at the final Unsat.
//
// Budgeted by the deterministic conflict cap, not the wall clock: in-place
// extraction makes settlements *faster*, so a tight wall-clock timeout
// would let borderline cells succeed in-place and time out fresh, muddying
// the comparison. The exit code gates only on deterministic counters
// (attack statuses agree across modes, exact keys on the exact attack —
// AppSAT is PAC, so its settled candidate may legitimately differ per
// mode — every successful in-place job actually extracted in place, and
// in-place emitted strictly less non-agreement CNF than fresh wherever
// extractions happened); the wall-clock geomeans are reported and
// recorded in BENCH_extraction.json but never gated on.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "engine/campaign.hpp"
#include "engine/report.hpp"

using namespace gshe;
using namespace gshe::engine;

namespace {

/// Non-agreement CNF variables: the miter encode plus (under "fresh") every
/// extraction's full re-encode. Agreement growth is common to both modes;
/// this isolates the re-encode work the in-place mode avoids.
std::uint64_t non_agreement_vars(const JobResult& j) {
    const auto& es = j.result.encoder_stats;
    return es.vars - es.agreement_vars;
}

}  // namespace

int main() {
    bench::banner("ABLATION",
                  "in-place key extraction vs fresh-solver re-encode");
    const double timeout = std::max(bench::attack_timeout_s(), 120.0);
    constexpr std::uint64_t kMaxConflicts = 30000;

    DefenseConfig defense;  // run_campaign's default camo matrix settings
    defense.kind = "camo";
    defense.fraction = 0.05;
    defense.protect_seed = 0xEC0;

    std::vector<std::string> labels;
    CampaignResult results[2];
    for (int m = 0; m < 2; ++m) {
        attack::AttackOptions attack_options;
        attack_options.timeout_seconds = timeout;
        attack_options.max_conflicts = kMaxConflicts;
        attack_options.extraction = m == 0 ? "fresh" : "inplace";
        const std::vector<JobSpec> jobs = CampaignRunner::cross_product(
            {"ex1010", "c7552"}, {defense}, {"sat", "appsat"}, {1, 2},
            attack_options);
        if (labels.empty())
            for (const JobSpec& s : jobs)
                labels.push_back(s.circuit + "/" + s.attack + "/s" +
                                 std::to_string(s.seed));
        CampaignOptions copts;
        copts.threads = bench::campaign_threads();
        results[m] = CampaignRunner(copts).run(jobs);
    }
    const CampaignResult& fresh = results[0];
    const CampaignResult& inplace = results[1];

    AsciiTable t("Key extraction: fresh re-encode vs in-place solve");
    t.header({"job", "status", "extracts", "fresh vars", "inpl vars",
              "fresh s", "inpl s", "speedup"});
    bool statuses_agree = true;
    bool keys_exact = true;
    bool inplace_used = true;
    bool reencode_avoided = true;
    double log_speedup_sum = 0.0, log_appsat_sum = 0.0;
    std::size_t speedup_n = 0, appsat_n = 0;
    for (std::size_t i = 0; i < fresh.jobs.size(); ++i) {
        const JobResult& jf = fresh.jobs[i];
        const JobResult& ji = inplace.jobs[i];
        // Gate on the attack status, not the key-exactness cell: AppSAT is
        // approximate, and which PAC candidate it settles on is mode
        // trajectory data. The exact attack must recover exact keys in both
        // modes.
        if (!jf.error.empty() || !ji.error.empty() ||
            jf.result.status != ji.result.status)
            statuses_agree = false;
        if (jf.attack == "sat" &&
            (!jf.result.key_exact || !ji.result.key_exact))
            keys_exact = false;
        const std::uint64_t extracts = ji.result.inplace_extractions;
        if (ji.error.empty() &&
            ji.result.status == attack::AttackResult::Status::Success &&
            extracts == 0)
            inplace_used = false;
        // Wherever an in-place extraction fired, "fresh" would have paid a
        // full re-encode for it — the non-agreement footprint must shrink.
        if (extracts > 0 && non_agreement_vars(ji) >= non_agreement_vars(jf))
            reencode_avoided = false;
        double speedup = 0.0;
        if (jf.result.seconds > 0.0 && ji.result.seconds > 0.0) {
            speedup = jf.result.seconds / ji.result.seconds;
            log_speedup_sum += std::log(speedup);
            ++speedup_n;
            if (jf.attack == "appsat") {
                log_appsat_sum += std::log(speedup);
                ++appsat_n;
            }
        }
        t.row({i < labels.size() ? labels[i] : std::to_string(i),
               bench::status_cell(ji), std::to_string(extracts),
               std::to_string(non_agreement_vars(jf)),
               std::to_string(non_agreement_vars(ji)),
               AsciiTable::runtime(jf.result.seconds, false),
               AsciiTable::runtime(ji.result.seconds, false),
               speedup > 0.0 ? AsciiTable::num(speedup, 3) + "x" : "n/a"});
    }
    std::puts(t.render().c_str());

    const double appsat_geomean =
        appsat_n ? std::exp(log_appsat_sum / static_cast<double>(appsat_n))
                 : 1.0;
    const double speedup_geomean =
        speedup_n ? std::exp(log_speedup_sum / static_cast<double>(speedup_n))
                  : 1.0;
    std::printf(
        "settlement-heavy (appsat) wall-clock geomean speedup: %.2fx "
        "(measured, not gated)\n",
        appsat_geomean);
    std::printf("overall wall-clock geomean speedup: %.2fx\n",
                speedup_geomean);
    std::printf(
        "statuses agree: %s; exact-attack keys exact: %s; "
        "inplace extractions fired: %s; re-encode work avoided: %s\n",
        statuses_agree ? "yes" : "NO (BUG)", keys_exact ? "yes" : "NO (BUG)",
        inplace_used ? "yes" : "NO (BUG)",
        reencode_avoided ? "yes" : "NO (BUG)");

    bench::write_extraction_bench_json("BENCH_extraction.json", labels, fresh,
                                       inplace, appsat_geomean,
                                       speedup_geomean);
    const bool ok =
        statuses_agree && keys_exact && inplace_used && reencode_avoided;
    return ok ? 0 : 1;
}
