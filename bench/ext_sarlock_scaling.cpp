// EXT — "provably secure" baseline: SARLock-class point-function protection
// vs large-scale GSHE camouflaging (Sec. V-A: "we believe that this renders
// our scheme competitive on par with provably secure techniques").
//
// Two different roads to SAT-attack intractability:
//  * SARLock: DIP count grows ~2^m with the protected bits — exponentially
//    many iterations, each cheap;
//  * GSHE-16 at scale: few DIPs, but each miter solve explodes with the
//    solution space k^cells.
// Both curves are measured as one campaign-engine job matrix over a custom
// netlist provider (the shared random base circuit), scheduled in parallel.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "engine/campaign.hpp"
#include "netlist/generator.hpp"

using namespace gshe;
using namespace gshe::attack;
using namespace gshe::engine;

int main() {
    bench::banner("EXTENSION", "SARLock [6] scaling vs GSHE-16 camouflaging");
    const double timeout = std::max(bench::attack_timeout_s(), 20.0);

    const std::vector<int> sarlock_bits = {4, 6, 8, 10};
    const std::vector<double> camo_fractions = {0.05, 0.10, 0.15, 0.20};

    std::vector<DefenseConfig> defenses;
    for (const int m : sarlock_bits) {
        DefenseConfig d;
        d.kind = "sarlock";
        d.sarlock_bits = m;
        d.protect_seed = 0x5a2;
        defenses.push_back(std::move(d));
    }
    for (const double frac : camo_fractions) {
        DefenseConfig d;
        d.kind = "camo";
        d.library = "gshe16";
        d.fraction = frac;
        d.protect_seed = 0x5a3;
        defenses.push_back(std::move(d));
    }

    AttackOptions opt;
    opt.timeout_seconds = timeout;
    const auto jobs =
        CampaignRunner::cross_product({"base"}, defenses, {"sat"}, {1}, opt);

    CampaignOptions copts;
    copts.threads = bench::campaign_threads();
    copts.netlist_provider = [](const std::string&) {
        netlist::RandomSpec spec;
        spec.n_inputs = 14;
        spec.n_outputs = 8;
        spec.n_gates = 120;
        spec.seed = 0x5a1;
        return netlist::random_circuit(spec, "base");
    };
    const CampaignResult campaign = CampaignRunner(copts).run(jobs);

    const auto per_dip_cell = [](const AttackResult& res) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.4f",
                      res.iterations ? res.seconds / res.iterations : 0.0);
        return std::string(buf);
    };

    AsciiTable t1("SARLock: DIP count doubles per protected bit (flat cost/DIP)");
    t1.header({"m bits", "wrong keys", "DIPs", "time", "s/DIP", "status"});
    for (std::size_t i = 0; i < sarlock_bits.size(); ++i) {
        const JobResult& j = campaign.jobs[i];
        const AttackResult& res = j.result;
        t1.row({std::to_string(sarlock_bits[i]),
                std::to_string((1 << sarlock_bits[i]) - 1),
                std::to_string(res.iterations),
                AsciiTable::runtime(res.seconds, res.timed_out()),
                per_dip_cell(res), bench::status_cell(j)});
    }
    std::puts(t1.render().c_str());

    AsciiTable t2("GSHE-16 camouflaging: few DIPs, exploding per-DIP cost");
    t2.header({"protected", "key bits", "DIPs", "time", "s/DIP", "status"});
    for (std::size_t i = 0; i < camo_fractions.size(); ++i) {
        const JobResult& j = campaign.jobs[sarlock_bits.size() + i];
        const AttackResult& res = j.result;
        t2.row({AsciiTable::num(camo_fractions[i] * 100, 3) + "%",
                std::to_string(j.key_bits), std::to_string(res.iterations),
                AsciiTable::runtime(res.seconds, res.timed_out()),
                per_dip_cell(res), bench::status_cell(j)});
    }
    std::puts(t2.render().c_str());

    std::printf("campaign: %zu jobs, %.1f s wall on %d thread(s)\n",
                campaign.jobs.size(), campaign.wall_seconds, campaign.threads);
    std::puts("SARLock's guarantee is an iteration floor; GSHE camouflaging's");
    std::puts("strength is per-iteration cost. The paper's point: at full-chip");
    std::puts("scale the latter matches the former in practice — and the GSHE");
    std::puts("primitive additionally corrupts >1 output per wrong key, instead");
    std::puts("of SARLock's single-minterm error.");
    return 0;
}
