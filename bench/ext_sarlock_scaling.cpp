// EXT — "provably secure" baseline: SARLock-class point-function protection
// vs large-scale GSHE camouflaging (Sec. V-A: "we believe that this renders
// our scheme competitive on par with provably secure techniques").
//
// Two different roads to SAT-attack intractability:
//  * SARLock: DIP count grows ~2^m with the protected bits — exponentially
//    many iterations, each cheap;
//  * GSHE-16 at scale: few DIPs, but each miter solve explodes with the
//    solution space k^cells.
// This bench measures both curves.
#include <cstdio>

#include "attack/oracle.hpp"
#include "attack/sat_attack.hpp"
#include "bench_util.hpp"
#include "camo/cell_library.hpp"
#include "camo/protect.hpp"
#include "camo/sarlock.hpp"
#include "common/ascii_table.hpp"
#include "netlist/corpus.hpp"
#include "netlist/generator.hpp"

using namespace gshe;
using namespace gshe::attack;

int main() {
    bench::banner("EXTENSION", "SARLock [6] scaling vs GSHE-16 camouflaging");
    const double timeout = std::max(bench::attack_timeout_s(), 20.0);

    netlist::RandomSpec spec;
    spec.n_inputs = 14;
    spec.n_outputs = 8;
    spec.n_gates = 120;
    spec.seed = 0x5a1;
    const netlist::Netlist base = netlist::random_circuit(spec, "base");

    AsciiTable t1("SARLock: DIP count doubles per protected bit (flat cost/DIP)");
    t1.header({"m bits", "wrong keys", "DIPs", "time", "s/DIP", "status"});
    for (const int m : {4, 6, 8, 10}) {
        const auto prot = camo::apply_sarlock(base, m, 0x5a2);
        ExactOracle oracle(prot.netlist);
        AttackOptions opt;
        opt.timeout_seconds = timeout;
        const AttackResult res = sat_attack(prot.netlist, oracle, opt);
        char per_dip[32];
        std::snprintf(per_dip, sizeof per_dip, "%.4f",
                      res.iterations ? res.seconds / res.iterations : 0.0);
        t1.row({std::to_string(m), std::to_string((1 << m) - 1),
                std::to_string(res.iterations),
                AsciiTable::runtime(res.seconds, res.timed_out()), per_dip,
                res.status == AttackResult::Status::Success
                    ? (res.key_exact ? "exact" : "wrong")
                    : "t-o"});
        std::fflush(stdout);
    }
    std::puts(t1.render().c_str());

    AsciiTable t2("GSHE-16 camouflaging: few DIPs, exploding per-DIP cost");
    t2.header({"protected", "key bits", "DIPs", "time", "s/DIP", "status"});
    for (const double frac : {0.05, 0.10, 0.15, 0.20}) {
        const auto sel = camo::select_gates(base, frac, 0x5a3);
        const auto prot = camo::apply_camouflage(base, sel, camo::gshe16(), 0x5a3);
        ExactOracle oracle(prot.netlist);
        AttackOptions opt;
        opt.timeout_seconds = timeout;
        const AttackResult res = sat_attack(prot.netlist, oracle, opt);
        char per_dip[32];
        std::snprintf(per_dip, sizeof per_dip, "%.4f",
                      res.iterations ? res.seconds / res.iterations : 0.0);
        t2.row({AsciiTable::num(frac * 100, 3) + "%",
                std::to_string(prot.netlist.key_bit_count()),
                std::to_string(res.iterations),
                AsciiTable::runtime(res.seconds, res.timed_out()), per_dip,
                res.status == AttackResult::Status::Success
                    ? (res.key_exact ? "exact" : "wrong")
                    : "t-o"});
        std::fflush(stdout);
    }
    std::puts(t2.render().c_str());
    std::puts("SARLock's guarantee is an iteration floor; GSHE camouflaging's");
    std::puts("strength is per-iteration cost. The paper's point: at full-chip");
    std::puts("scale the latter matches the former in practice — and the GSHE");
    std::puts("primitive additionally corrupts >1 output per wrong key, instead");
    std::puts("of SARLock's single-minterm error.");
    return 0;
}
