// E1/E2 — Table I material parameters with derived electrical quantities,
// and the Fig. 3 read-out equivalent circuit operating point (power 0.2125
// uW, energy 0.33 fJ, area 0.0016 um^2 in the paper).
#include <cstdio>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "core/characterization.hpp"
#include "core/gshe_switch.hpp"
#include "spin/demag.hpp"

using namespace gshe;
using namespace gshe::core;

int main() {
    bench::banner("TABLE I + FIG. 3", "GSHE switch parameters and read-out circuit");

    const GsheSwitchParams p;

    AsciiTable t1("Table I — material parameters (paper values in defaults)");
    t1.header({"Parameter", "Value"});
    t1.row({"Volume of nanomagnets", "(28 x 15 x 2) nm^3"});
    t1.row({"Ms (W-NM)", bench::eng(p.write_nm.ms, "A/m")});
    t1.row({"Ms (R-NM)", bench::eng(p.read_nm.ms, "A/m")});
    t1.row({"Ku (W-NM)", AsciiTable::num(p.write_nm.ku) + " J/m^3"});
    t1.row({"Ku (R-NM)", AsciiTable::num(p.read_nm.ku) + " J/m^3"});
    t1.row({"IS deterministic switching", bench::eng(p.deterministic_spin_current, "A")});
    t1.row({"RAP", "1 Ohm*um^2"});
    t1.row({"TMR", AsciiTable::num(p.tmr * 100) + " %"});
    t1.row({"rho (heavy metal)", AsciiTable::num(p.rho_hm) + " Ohm*m"});
    t1.row({"theta_SH", AsciiTable::num(p.theta_sh)});
    t1.row({"t_HM", bench::eng(p.t_hm, "m")});
    std::puts(t1.render().c_str());

    const auto n = p.write_nm.demag_n;
    AsciiTable t2("Derived quantities (paper: GP=420 uS, GAP=155.6 uS, beta=6, r~1 kOhm)");
    t2.header({"Quantity", "Model value", "Paper"});
    t2.row({"GP = A/RAP", bench::eng(p.gp(), "S"), "420 uS"});
    t2.row({"GAP = GP/(1+TMR)", bench::eng(p.gap(), "S"), "155.6 uS"});
    t2.row({"beta = theta_SH*(w_NM/t_HM)", AsciiTable::num(p.beta()), "6"});
    t2.row({"r = rho*L/(w*t)", bench::eng(p.hm_resistance(), "Ohm"), "~1 kOhm"});
    t2.row({"W-NM demag (Nx,Ny,Nz)",
            "(" + AsciiTable::num(n.x, 3) + ", " + AsciiTable::num(n.y, 3) +
                ", " + AsciiTable::num(n.z, 3) + ")",
            "-"});
    std::puts(t2.render().c_str());

    const ReadoutPoint pt = readout_point(p, 20e-6);
    AsciiTable t3("Fig. 3 equivalent circuit at IS = 20 uA");
    t3.header({"Quantity", "Model value", "Paper"});
    t3.row({"VOUT = IS*r/beta", bench::eng(pt.v_out, "V"), "-"});
    t3.row({"VSUP", bench::eng(pt.v_sup, "V"), "-"});
    t3.row({"read-out power P", bench::eng(pt.power, "W"), "0.2125 uW"});
    t3.row({"energy at 1.55 ns", bench::eng(pt.power * kNominalDelay, "J"), "0.33 fJ"});
    t3.row({"cell area", AsciiTable::num(p.area() * 1e12, 3) + " um^2", "0.0016 um^2"});
    t3.row({"output current IS/beta", bench::eng(pt.out_current, "A"), "-"});
    std::puts(t3.render().c_str());
    return 0;
}
