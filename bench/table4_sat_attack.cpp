// E8 — Table IV: SAT-attack runtimes across seven camouflaging techniques
// and protection levels, on the scaled benchmark corpus.
//
// Methodology follows Sec. V-A exactly: for each benchmark the protected
// gates are selected once (seeded, DefenseConfig::protect_seed), memorized,
// and reapplied across every technique; each cell then reports the runtime
// of the oracle-guided SAT attack, "t-o" when the (scaled) timeout is hit.
//
// The whole grid is one CampaignRunner job matrix, scheduled across all
// cores (GSHE_THREADS to override) — cells fill in parallel instead of the
// old one-cell-at-a-time loop.
//
// Expected shape (paper): runtime grows with the number of cloaked
// functions and with the protected percentage; the 16-function GSHE column
// is by far the hardest; the multiplier-class circuit (log2) times out for
// every technique; ex1010 (10 inputs) is the most resolvable.
//
// Scaling: GSHE_TIMEOUT_S (default 2 s; paper 48 h), GSHE_TABLE4_FULL=1 for
// all seven circuits (default four).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "camo/cell_library.hpp"
#include "common/ascii_table.hpp"
#include "engine/campaign.hpp"
#include "netlist/corpus.hpp"

using namespace gshe;
using namespace gshe::attack;
using namespace gshe::engine;

int main() {
    bench::banner("TABLE IV", "SAT-attack runtimes (seconds; t-o = timeout)");
    const double timeout = bench::attack_timeout_s();
    const bool full = env_long("GSHE_TABLE4_FULL", 0) != 0;
    std::printf("timeout per attack: %.1f s (paper: 172800 s = 48 h)\n", timeout);

    std::vector<std::string> circuits = {"ex1010", "c7552", "b14", "log2"};
    std::vector<double> levels = {0.10, 0.20, 0.30};
    if (full) {
        circuits = {"ex1010", "c7552", "aes_core", "b14",
                    "b21", "pci_bridge32", "log2"};
        levels = {0.10, 0.20, 0.30, 0.40};
    }
    const auto& libs = camo::table4_libraries();

    // One defense per (level, library); the shared protect_seed reapplies
    // the identical gate selection across all library columns.
    std::vector<DefenseConfig> defenses;
    for (const double level : levels)
        for (const auto& lib : libs) {
            DefenseConfig d;
            d.kind = "camo";
            d.library = lib.name;
            d.fraction = level;
            d.protect_seed = 0x7AB4;
            defenses.push_back(std::move(d));
        }

    AttackOptions opt;
    opt.timeout_seconds = timeout;
    const auto jobs =
        CampaignRunner::cross_product(circuits, defenses, {"sat"}, {1}, opt);

    CampaignOptions copts;
    copts.threads = bench::campaign_threads();
    copts.on_job_done = [&](const JobResult& j) {
        std::fprintf(stderr, "  [%3zu/%zu] %s %s: %s\n", j.index + 1,
                     jobs.size(), j.circuit.c_str(), j.defense.c_str(),
                     j.error.empty()
                         ? AttackResult::status_name(j.result.status).c_str()
                         : j.error.c_str());
    };
    const CampaignResult campaign = CampaignRunner(copts).run(jobs);

    // Job index layout (cross_product order): circuit-major, then
    // (level, library) in defense order.
    const std::size_t n_libs = libs.size();
    const std::size_t per_circuit = levels.size() * n_libs;
    std::vector<std::size_t> gate_counts;
    for (const auto& name : circuits)
        gate_counts.push_back(netlist::build_benchmark(name).logic_gate_count());
    for (std::size_t li = 0; li < levels.size(); ++li) {
        AsciiTable t("IP protection: " +
                     std::to_string(static_cast<int>(levels[li] * 100)) + "%");
        std::vector<std::string> head = {"Benchmark"};
        for (const auto& lib : libs)
            head.push_back(lib.citation + " (" +
                           std::to_string(lib.function_count()) + ")");
        head.push_back("selected");
        t.header(head);

        for (std::size_t ci = 0; ci < circuits.size(); ++ci) {
            std::vector<std::string> row = {circuits[ci]};
            std::size_t selected = 0;
            for (std::size_t bi = 0; bi < n_libs; ++bi) {
                const JobResult& j =
                    campaign.jobs[ci * per_circuit + li * n_libs + bi];
                std::string cell;
                if (!j.error.empty()) {
                    cell = "error";
                } else if (j.result.status == AttackResult::Status::Success) {
                    cell = AsciiTable::runtime(j.result.seconds, false);
                    if (!j.result.key_exact) cell += " (wrong key!)";
                } else {
                    cell = "t-o";
                }
                row.push_back(cell);
                if (j.error.empty()) selected = j.protected_cells;
            }
            char sel[48];
            std::snprintf(sel, sizeof sel, "%zu/%zu gates", selected,
                          gate_counts[ci]);
            row.push_back(sel);
            t.row(row);
        }
        std::puts(t.render().c_str());
    }

    std::printf("campaign: %zu jobs, %.1f s wall on %d thread(s)\n",
                campaign.jobs.size(), campaign.wall_seconds, campaign.threads);
    std::puts("Reading the table: left-to-right the cloaked-function count rises");
    std::puts("(3, 6, 4, 2, 4, 7+1, 16) and so does attack effort; top-to-bottom");
    std::puts("within a column, effort rises with the protected fraction. 't-o'");
    std::puts("cells reproduce the paper's — at 1/86400 of the timeout on ~1/10");
    std::puts("scale circuits.");
    return 0;
}
