// E8 — Table IV: SAT-attack runtimes across seven camouflaging techniques
// and protection levels, on the scaled benchmark corpus.
//
// Methodology follows Sec. V-A exactly: for each benchmark the protected
// gates are selected once (seeded), memorized, and reapplied across every
// technique; each cell then reports the runtime of the oracle-guided SAT
// attack, "t-o" when the (scaled) timeout is hit.
//
// Expected shape (paper): runtime grows with the number of cloaked
// functions and with the protected percentage; the 16-function GSHE column
// is by far the hardest; the multiplier-class circuit (log2) times out for
// every technique; ex1010 (10 inputs) is the most resolvable.
//
// Scaling: GSHE_TIMEOUT_S (default 2 s; paper 48 h), GSHE_TABLE4_FULL=1 for
// all seven circuits (default four).
#include <cstdio>
#include <vector>

#include "attack/oracle.hpp"
#include "attack/sat_attack.hpp"
#include "bench_util.hpp"
#include "camo/cell_library.hpp"
#include "camo/protect.hpp"
#include "common/ascii_table.hpp"
#include "netlist/corpus.hpp"

using namespace gshe;
using namespace gshe::attack;

int main() {
    bench::banner("TABLE IV", "SAT-attack runtimes (seconds; t-o = timeout)");
    const double timeout = bench::attack_timeout_s();
    const bool full = env_long("GSHE_TABLE4_FULL", 0) != 0;
    std::printf("timeout per attack: %.1f s (paper: 172800 s = 48 h)\n", timeout);

    std::vector<std::string> circuits = {"ex1010", "c7552", "b14", "log2"};
    std::vector<double> levels = {0.10, 0.20, 0.30};
    if (full) {
        circuits = {"ex1010", "c7552", "aes_core", "b14",
                    "b21", "pci_bridge32", "log2"};
        levels = {0.10, 0.20, 0.30, 0.40};
    }
    const auto& libs = camo::table4_libraries();

    for (const double level : levels) {
        AsciiTable t("IP protection: " + std::to_string(static_cast<int>(level * 100)) + "%");
        std::vector<std::string> head = {"Benchmark"};
        for (const auto& lib : libs)
            head.push_back(lib.citation + " (" +
                           std::to_string(lib.function_count()) + ")");
        head.push_back("selected");
        t.header(head);

        for (const auto& name : circuits) {
            const netlist::Netlist nl = netlist::build_benchmark(name);
            const auto sel = camo::select_gates(nl, level, /*seed=*/0x7AB4);
            std::vector<std::string> row = {name};
            for (const auto& lib : libs) {
                const auto prot = camo::apply_camouflage(nl, sel, lib, 0x7AB4);
                ExactOracle oracle(prot.netlist);
                AttackOptions opt;
                opt.timeout_seconds = timeout;
                const AttackResult res = sat_attack(prot.netlist, oracle, opt);
                std::string cell;
                switch (res.status) {
                    case AttackResult::Status::Success:
                        cell = AsciiTable::runtime(res.seconds, false);
                        if (!res.key_exact) cell += " (wrong key!)";
                        break;
                    default:
                        cell = "t-o";
                        break;
                }
                row.push_back(cell);
                std::fflush(stdout);
            }
            char selected[48];
            std::snprintf(selected, sizeof selected, "%zu/%zu gates", sel.size(),
                          nl.logic_gate_count());
            row.push_back(selected);
            t.row(row);
        }
        std::puts(t.render().c_str());
    }

    std::puts("Reading the table: left-to-right the cloaked-function count rises");
    std::puts("(3, 6, 4, 2, 4, 7+1, 16) and so does attack effort; top-to-bottom");
    std::puts("within a column, effort rises with the protected fraction. 't-o'");
    std::puts("cells reproduce the paper's — at 1/86400 of the timeout on ~1/10");
    std::puts("scale circuits.");
    return 0;
}
