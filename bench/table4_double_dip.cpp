// E9 — Sec. V-A, Double DIP study: "Conducting the very same set of
// experiments as in Table IV, we observe that the runtimes are on average
// higher across all benchmarks" (e.g. aes_core at 10%: ~7 h with [8] vs
// ~15 h with [12]).
//
// This bench runs the Table IV subgrid with both attacks side by side and
// reports the runtime ratio.
#include <cstdio>
#include <vector>

#include "attack/double_dip.hpp"
#include "attack/oracle.hpp"
#include "attack/sat_attack.hpp"
#include "bench_util.hpp"
#include "camo/cell_library.hpp"
#include "camo/protect.hpp"
#include "common/ascii_table.hpp"
#include "netlist/corpus.hpp"

using namespace gshe;
using namespace gshe::attack;

int main() {
    bench::banner("TABLE IV (Double DIP)", "base SAT attack vs Double DIP");
    // Higher floor than the Table IV default so both attacks can complete
    // and the runtime ratio materializes on more cells.
    const double timeout = std::max(bench::attack_timeout_s(), 20.0);

    const std::vector<std::string> circuits = {"ex1010", "c7552"};
    const std::vector<double> levels = {0.05, 0.10};

    AsciiTable t("Runtimes in seconds (t-o = " + AsciiTable::num(timeout, 3) + " s)");
    t.header({"Benchmark", "Protection", "SAT [8] time", "SAT DIPs",
              "DoubleDIP [12] time", "DDIP iters", "ratio"});

    double ratio_sum = 0.0;
    int ratio_count = 0;
    for (const auto& name : circuits) {
        const netlist::Netlist nl = netlist::build_benchmark(name);
        for (const double level : levels) {
            const auto sel = camo::select_gates(nl, level, 0x7AB4);
            const auto prot = camo::apply_camouflage(nl, sel, camo::gshe16(), 0x7AB4);
            AttackOptions opt;
            opt.timeout_seconds = timeout;

            ExactOracle o1(prot.netlist);
            const AttackResult base = sat_attack(prot.netlist, o1, opt);
            ExactOracle o2(prot.netlist);
            const AttackResult ddip = double_dip_attack(prot.netlist, o2, opt);

            std::string ratio = "-";
            if (base.status == AttackResult::Status::Success &&
                ddip.status == AttackResult::Status::Success && base.seconds > 0) {
                ratio = AsciiTable::num(ddip.seconds / base.seconds, 3) + "x";
                ratio_sum += ddip.seconds / base.seconds;
                ++ratio_count;
            }
            t.row({name, AsciiTable::num(level * 100, 3) + "%",
                   AsciiTable::runtime(base.seconds, base.timed_out()),
                   std::to_string(base.iterations),
                   AsciiTable::runtime(ddip.seconds, ddip.timed_out()),
                   std::to_string(ddip.iterations), ratio});
        }
    }
    std::puts(t.render().c_str());
    if (ratio_count > 0)
        std::printf("mean DoubleDIP/base runtime ratio: %.2fx (paper: ~2x on aes_core)\n",
                    ratio_sum / ratio_count);
    std::puts("Double DIP prunes >= 2 keys per iteration (fewer iterations) but");
    std::puts("pays for a four-copy miter per query — net runtimes are higher,");
    std::puts("matching the paper's observation.");
    return 0;
}
