// E9 — Sec. V-A, Double DIP study: "Conducting the very same set of
// experiments as in Table IV, we observe that the runtimes are on average
// higher across all benchmarks" (e.g. aes_core at 10%: ~7 h with [8] vs
// ~15 h with [12]).
//
// Rebased on the campaign engine: the {circuit x level x attack} grid is
// one job matrix (both attacks on the identical protection via the shared
// protect_seed), scheduled in parallel; the table pairs each cell's SAT [8]
// and Double DIP [12] results and reports the runtime ratio.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "engine/campaign.hpp"

using namespace gshe;
using namespace gshe::attack;
using namespace gshe::engine;

int main() {
    bench::banner("TABLE IV (Double DIP)", "base SAT attack vs Double DIP");
    // Higher floor than the Table IV default so both attacks can complete
    // and the runtime ratio materializes on more cells.
    const double timeout = std::max(bench::attack_timeout_s(), 20.0);

    const std::vector<std::string> circuits = {"ex1010", "c7552"};
    const std::vector<double> levels = {0.05, 0.10};
    const std::vector<std::string> attacks = {"sat", "double_dip"};

    std::vector<DefenseConfig> defenses;
    for (const double level : levels) {
        DefenseConfig d;
        d.kind = "camo";
        d.library = "gshe16";
        d.fraction = level;
        d.protect_seed = 0x7AB4;
        defenses.push_back(std::move(d));
    }

    AttackOptions opt;
    opt.timeout_seconds = timeout;
    const auto jobs =
        CampaignRunner::cross_product(circuits, defenses, attacks, {1}, opt);

    CampaignOptions copts;
    copts.threads = bench::campaign_threads();
    const CampaignResult campaign = CampaignRunner(copts).run(jobs);

    AsciiTable t("Runtimes in seconds (t-o = " + AsciiTable::num(timeout, 3) + " s)");
    t.header({"Benchmark", "Protection", "SAT [8] time", "SAT DIPs",
              "DoubleDIP [12] time", "DDIP iters", "ratio"});

    double ratio_sum = 0.0;
    int ratio_count = 0;
    // cross_product order: circuit-major, then level, then attack.
    for (std::size_t ci = 0; ci < circuits.size(); ++ci) {
        for (std::size_t li = 0; li < levels.size(); ++li) {
            const std::size_t cell = (ci * levels.size() + li) * attacks.size();
            const JobResult& jbase = campaign.jobs[cell];
            const JobResult& jddip = campaign.jobs[cell + 1];
            if (!jbase.error.empty() || !jddip.error.empty()) {
                t.row({circuits[ci], AsciiTable::num(levels[li] * 100, 3) + "%",
                       "error", "-", "error", "-", "-"});
                continue;
            }
            const AttackResult& base = jbase.result;
            const AttackResult& ddip = jddip.result;

            std::string ratio = "-";
            if (base.status == AttackResult::Status::Success &&
                ddip.status == AttackResult::Status::Success && base.seconds > 0) {
                ratio = AsciiTable::num(ddip.seconds / base.seconds, 3) + "x";
                ratio_sum += ddip.seconds / base.seconds;
                ++ratio_count;
            }
            t.row({circuits[ci], AsciiTable::num(levels[li] * 100, 3) + "%",
                   AsciiTable::runtime(base.seconds, base.timed_out()),
                   std::to_string(base.iterations),
                   AsciiTable::runtime(ddip.seconds, ddip.timed_out()),
                   std::to_string(ddip.iterations), ratio});
        }
    }
    std::puts(t.render().c_str());
    if (ratio_count > 0)
        std::printf("mean DoubleDIP/base runtime ratio: %.2fx (paper: ~2x on aes_core)\n",
                    ratio_sum / ratio_count);
    std::printf("campaign: %zu jobs, %.1f s wall on %d thread(s)\n",
                campaign.jobs.size(), campaign.wall_seconds, campaign.threads);
    std::puts("Double DIP prunes >= 2 keys per iteration (fewer iterations) but");
    std::puts("pays for a four-copy miter per query — net runtimes are higher,");
    std::puts("matching the paper's observation.");
    return 0;
}
