// A1 — Ablation: SAT-attack effort vs the number of cloaked functions k.
// Table IV varies k only through the prior-art libraries (which differ in
// composition too); this ablation isolates k on a single circuit and a
// single selection by cloaking nested subsets of the 16-function space
// (camo::ablation_library). Expected: DIP count and runtime grow
// monotonically (roughly linearly in key bits = |selection| * ceil(log2 k),
// super-linearly in wall time).
//
// The k-ladder is one CampaignRunner job matrix; the shared protect_seed
// memorizes one NAND/NOR selection across every rung.
#include <cmath>
#include <cstdio>
#include <vector>

#include "camo/cell_library.hpp"
#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "engine/campaign.hpp"
#include "netlist/corpus.hpp"

using namespace gshe;
using namespace gshe::attack;
using namespace gshe::engine;

int main() {
    bench::banner("ABLATION", "SAT-attack effort vs cloaked-function count k");
    const double timeout = std::max(bench::attack_timeout_s(), 5.0);

    const std::vector<int> ks = {2, 3, 4, 6, 8, 16};
    std::vector<DefenseConfig> defenses;
    for (const int k : ks) {
        DefenseConfig d;
        d.kind = "camo";
        d.library = camo::ablation_library(k).name;
        d.fraction = 0.10;
        d.protect_seed = 0xAB1;  // same memorized selection for every rung
        defenses.push_back(std::move(d));
    }
    AttackOptions opt;
    opt.timeout_seconds = timeout;
    const auto jobs =
        CampaignRunner::cross_product({"c7552"}, defenses, {"sat"}, {1}, opt);

    CampaignOptions copts;
    copts.threads = bench::campaign_threads();
    const CampaignResult campaign = CampaignRunner(copts).run(jobs);

    const netlist::Netlist nl = netlist::build_benchmark("c7552");
    std::printf("circuit: c7552 stand-in (%zu gates), %zu camouflaged cells, "
                "timeout %.1f s\n",
                nl.logic_gate_count(), campaign.jobs.front().protected_cells,
                timeout);

    AsciiTable t("Effort vs k (same circuit, same memorized selection)");
    t.header({"k", "key bits", "key space", "DIPs", "time", "conflicts",
              "status"});
    for (std::size_t i = 0; i < ks.size(); ++i) {
        const JobResult& j = campaign.jobs[i];
        const AttackResult& res = j.result;
        char space[32];
        std::snprintf(space, sizeof space, "%.3g",
                      std::pow(static_cast<double>(ks[i]),
                               static_cast<double>(j.protected_cells)));
        t.row({std::to_string(ks[i]), std::to_string(j.key_bits), space,
               std::to_string(res.iterations),
               AsciiTable::runtime(res.seconds, res.timed_out()),
               std::to_string(res.solver_stats.conflicts),
               bench::status_cell(j)});
    }
    std::puts(t.render().c_str());
    std::printf("campaign: %zu jobs, %.1f s wall on %d thread(s)\n",
                campaign.jobs.size(), campaign.wall_seconds, campaign.threads);
    std::puts("The solution space |C| = k^cells is the defender's lever: the");
    std::puts("16-function GSHE cell maximizes it at constant layout cost.");
    return 0;
}
