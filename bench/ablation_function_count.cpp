// A1 — Ablation: SAT-attack effort vs the number of cloaked functions k.
// Table IV varies k only through the prior-art libraries (which differ in
// composition too); this ablation isolates k on a single circuit and a
// single selection by cloaking nested subsets of the 16-function space.
// Expected: DIP count and runtime grow monotonically (roughly linearly in
// key bits = |selection| * ceil(log2 k), super-linearly in wall time).
#include <cstdio>
#include <vector>

#include "attack/oracle.hpp"
#include "attack/sat_attack.hpp"
#include "bench_util.hpp"
#include "camo/cell_library.hpp"
#include "camo/protect.hpp"
#include "common/ascii_table.hpp"
#include "netlist/corpus.hpp"

using namespace gshe;
using namespace gshe::attack;
using core::Bool2;

int main() {
    bench::banner("ABLATION", "SAT-attack effort vs cloaked-function count k");
    const double timeout = std::max(bench::attack_timeout_s(), 5.0);

    // Nested candidate sets, every one containing NAND and NOR so one
    // selection serves all (the true function is always a member).
    const std::vector<std::pair<int, std::vector<Bool2>>> ladders = {
        {2, {Bool2::NAND(), Bool2::NOR()}},
        {3, {Bool2::NAND(), Bool2::NOR(), Bool2::XOR()}},
        {4, {Bool2::NAND(), Bool2::NOR(), Bool2::XOR(), Bool2::XNOR()}},
        {6,
         {Bool2::NAND(), Bool2::NOR(), Bool2::XOR(), Bool2::XNOR(),
          Bool2::AND(), Bool2::OR()}},
        {8,
         {Bool2::NAND(), Bool2::NOR(), Bool2::XOR(), Bool2::XNOR(),
          Bool2::AND(), Bool2::OR(), Bool2::NOT_A(), Bool2::A()}},
        {16, {Bool2::all().begin(), Bool2::all().end()}},
    };

    const netlist::Netlist nl = netlist::build_benchmark("c7552");
    const auto sel = camo::select_gates(nl, 0.10, 0xAB1);
    std::printf("circuit: c7552 stand-in (%zu gates), %zu camouflaged cells, "
                "timeout %.1f s\n",
                nl.logic_gate_count(), sel.size(), timeout);

    AsciiTable t("Effort vs k (same circuit, same memorized selection)");
    t.header({"k", "key bits", "key space", "DIPs", "time", "conflicts",
              "status"});
    for (const auto& [k, fns] : ladders) {
        camo::CellLibrary lib;
        lib.name = "ablation_k" + std::to_string(k);
        lib.citation = "k=" + std::to_string(k);
        lib.functions = fns;
        const auto prot = camo::apply_camouflage(nl, sel, lib, 0xAB1);
        ExactOracle oracle(prot.netlist);
        AttackOptions opt;
        opt.timeout_seconds = timeout;
        const AttackResult res = sat_attack(prot.netlist, oracle, opt);
        char space[32];
        std::snprintf(space, sizeof space, "%.3g",
                      std::pow(static_cast<double>(k),
                               static_cast<double>(sel.size())));
        t.row({std::to_string(k), std::to_string(prot.netlist.key_bit_count()),
               space, std::to_string(res.iterations),
               AsciiTable::runtime(res.seconds, res.timed_out()),
               std::to_string(res.solver_stats.conflicts),
               res.status == AttackResult::Status::Success
                   ? (res.key_exact ? "exact" : "wrong")
                   : "t-o"});
        std::fflush(stdout);
    }
    std::puts(t.render().c_str());
    std::puts("The solution space |C| = k^cells is the defender's lever: the");
    std::puts("16-function GSHE cell maximizes it at constant layout cost.");
    return 0;
}
