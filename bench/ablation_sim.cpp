// Ablation: the levelized bit-sliced simulation engine on the default camo
// matrix. Four axes:
//
//   kernel      reference per-gate walk vs the compiled SimPlan sweep
//               (same 64-pattern workload, word-identical results)
//   multi-word  1024 patterns as sixteen 64-bit sweeps vs one
//               run_words(16) pass (the OracleService / AppSAT shape)
//   cone        per-DIP full run_single_all vs the cone-restricted
//               run_frontier_single the compact encoder now uses
//   support     --dip-support=full vs cone on the same SAT-attack jobs
//               (trajectory-changing: iterations may differ, keys must not)
//
// Gated only on deterministic counters: kernel/frontier word equality, exact
// keys under both support modes, and a >= 2x geomean reduction in per-DIP
// sweep cost (full-plan steps vs frontier sub-plan steps — the step count a
// DIP sweep executes, independent of the host). Wall-clock speedups are
// reported and recorded in BENCH_sim.json but never gated on.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "camo/cell_library.hpp"
#include "camo/protect.hpp"
#include "common/ascii_table.hpp"
#include "engine/campaign.hpp"
#include "netlist/corpus.hpp"
#include "netlist/netlist.hpp"
#include "netlist/sim_plan.hpp"
#include "netlist/simulator.hpp"

using namespace gshe;
using namespace gshe::engine;

namespace {

/// Seconds per call, with the call repeated until ~50 ms of wall time so
/// fast kernels are not measured at clock resolution.
template <typename Fn>
double time_per_call(Fn&& fn) {
    using clock = std::chrono::steady_clock;
    std::size_t reps = 1;
    for (;;) {
        const auto t0 = clock::now();
        for (std::size_t i = 0; i < reps; ++i) fn();
        const double s = std::chrono::duration<double>(clock::now() - t0).count();
        if (s >= 0.05 || reps >= (1u << 20))
            return s / static_cast<double>(reps);
        reps *= 4;
    }
}

double geomean(const std::vector<double>& ratios) {
    if (ratios.empty()) return 0.0;
    double log_sum = 0.0;
    for (const double r : ratios) log_sum += std::log(r);
    return std::exp(log_sum / static_cast<double>(ratios.size()));
}

}  // namespace

int main() {
    bench::banner("ABLATION",
                  "levelized bit-sliced simulation engine (SimPlan kernel)");
    const std::vector<std::string> circuits{"ex1010", "c7552"};
    constexpr double kFraction = 0.05;  // run_campaign's default camo matrix
    constexpr std::uint64_t kSeed = 0xEC0;

    bool words_match = true;
    std::vector<bench::SimCircuitSummary> rows;
    std::vector<double> step_reductions, kernel_speedups, multiword_speedups,
        cone_speedups;
    for (const std::string& name : circuits) {
        const netlist::Netlist plain = netlist::build_benchmark(name);
        const camo::Protection prot = camo::apply_camouflage(
            plain, camo::select_gates(plain, kFraction, kSeed), camo::gshe16(),
            kSeed);
        const netlist::Netlist& nl = prot.netlist;
        const netlist::Simulator sim(nl);

        bench::SimCircuitSummary row;
        row.name = name;
        row.gates = nl.size();
        row.camo_cells = nl.camo_cells().size();
        row.inputs = nl.inputs().size();
        const std::vector<char>& support = nl.key_support();
        for (const netlist::GateId pi : nl.inputs())
            if (support[pi]) ++row.support_inputs;
        row.full_steps = nl.sim_plan().steps();
        row.frontier_steps = nl.frontier_plan().steps();

        std::mt19937_64 rng(kSeed ^ nl.size());
        std::vector<std::uint64_t> pi(nl.inputs().size());
        for (auto& w : pi) w = rng();
        std::vector<bool> pattern(nl.inputs().size());
        for (std::size_t i = 0; i < pattern.size(); ++i)
            pattern[i] = (pi[i] & 1) != 0;

        // Deterministic equality checks (gated): the plan kernel and the
        // cone-restricted sweep reproduce the reference walk bit for bit.
        if (sim.run(pi) != sim.run_reference(pi)) words_match = false;
        const std::vector<char> full_values = sim.run_single_all(pattern);
        const std::span<const char> frontier = sim.run_frontier_single(pattern);
        for (const netlist::GateId g : nl.frontier_read_set())
            if (frontier[g] != full_values[g]) words_match = false;

        // Measured sweep timings (reported, never gated).
        row.reference_sweep_s = time_per_call([&] { (void)sim.run_reference(pi); });
        row.kernel_sweep_s = time_per_call([&] { (void)sim.run(pi); });
        constexpr std::size_t kWords = 16;
        std::vector<std::uint64_t> pi_words(nl.inputs().size() * kWords);
        for (auto& w : pi_words) w = rng();
        row.single_word_s = time_per_call([&] {
            std::vector<std::uint64_t> slice(nl.inputs().size());
            for (std::size_t w = 0; w < kWords; ++w) {
                for (std::size_t i = 0; i < slice.size(); ++i)
                    slice[i] = pi_words[i * kWords + w];
                (void)sim.run(slice);
            }
        });
        row.multi_word_s =
            time_per_call([&] { (void)sim.run_words(pi_words, kWords); });
        row.full_dip_s =
            time_per_call([&] { (void)sim.run_single_all_span(pattern); });
        row.frontier_dip_s =
            time_per_call([&] { (void)sim.run_frontier_single(pattern); });

        step_reductions.push_back(static_cast<double>(row.full_steps) /
                                  static_cast<double>(row.frontier_steps));
        kernel_speedups.push_back(row.reference_sweep_s / row.kernel_sweep_s);
        multiword_speedups.push_back(row.single_word_s / row.multi_word_s);
        cone_speedups.push_back(row.full_dip_s / row.frontier_dip_s);
        rows.push_back(row);
    }

    AsciiTable t("Per-DIP sweep cost: full plan vs key-cone frontier sub-plan");
    t.header({"circuit", "gates", "camo", "full steps", "cone steps",
              "step red.", "kernel", "x16 words", "cone sweep"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const bench::SimCircuitSummary& r = rows[i];
        t.row({r.name, AsciiTable::num(static_cast<double>(r.gates), 6),
               AsciiTable::num(static_cast<double>(r.camo_cells), 4),
               AsciiTable::num(static_cast<double>(r.full_steps), 6),
               AsciiTable::num(static_cast<double>(r.frontier_steps), 6),
               AsciiTable::num(step_reductions[i], 3) + "x",
               AsciiTable::num(kernel_speedups[i], 3) + "x",
               AsciiTable::num(multiword_speedups[i], 3) + "x",
               AsciiTable::num(cone_speedups[i], 3) + "x"});
    }
    std::puts(t.render().c_str());

    // Support axis: the same SAT-attack matrix under --dip-support full vs
    // cone. Trajectory-changing, so iterations/seconds may differ; both
    // modes must still recover exact keys.
    const double timeout = std::max(bench::attack_timeout_s(), 120.0);
    DefenseConfig defense;
    defense.kind = "camo";
    defense.fraction = kFraction;
    defense.protect_seed = kSeed;
    std::vector<std::string> labels;
    CampaignResult support_results[2];
    for (int m = 0; m < 2; ++m) {
        attack::AttackOptions attack_options;
        attack_options.timeout_seconds = timeout;
        attack_options.max_conflicts = 30000;
        attack_options.dip_support = m == 0 ? "full" : "cone";
        const std::vector<JobSpec> jobs = CampaignRunner::cross_product(
            circuits, {defense}, {"sat"}, {1, 2}, attack_options);
        if (labels.empty())
            for (const JobSpec& s : jobs)
                labels.push_back(s.circuit + "/s" + std::to_string(s.seed));
        CampaignOptions copts;
        copts.threads = bench::campaign_threads();
        support_results[m] = CampaignRunner(copts).run(jobs);
    }
    bool keys_exact = true;
    AsciiTable st("--dip-support: full vs cone (same jobs, exact keys gated)");
    st.header({"job", "full", "cone", "full iters", "cone iters", "full s",
               "cone s"});
    for (std::size_t i = 0; i < support_results[0].jobs.size(); ++i) {
        const JobResult& jf = support_results[0].jobs[i];
        const JobResult& jc = support_results[1].jobs[i];
        if (!jf.result.key_exact || !jc.result.key_exact) keys_exact = false;
        st.row({i < labels.size() ? labels[i] : std::to_string(i),
                bench::status_cell(jf), bench::status_cell(jc),
                AsciiTable::num(static_cast<double>(jf.result.iterations), 4),
                AsciiTable::num(static_cast<double>(jc.result.iterations), 4),
                AsciiTable::runtime(jf.result.seconds, false),
                AsciiTable::runtime(jc.result.seconds, false)});
    }
    std::puts(st.render().c_str());

    const double step_reduction_geomean = geomean(step_reductions);
    std::printf("per-DIP sweep step reduction geomean: %.2fx (gate: >= 2x)\n",
                step_reduction_geomean);
    std::printf("kernel speedup geomean: %.2fx; multi-word: %.2fx; cone "
                "sweep: %.2fx (measured, not gated)\n",
                geomean(kernel_speedups), geomean(multiword_speedups),
                geomean(cone_speedups));
    std::printf("kernel/frontier words match reference: %s; keys exact under "
                "both support modes: %s\n",
                words_match ? "yes" : "NO (BUG)",
                keys_exact ? "yes" : "NO (BUG)");

    bench::write_sim_bench_json(
        "BENCH_sim.json", rows, step_reduction_geomean,
        geomean(kernel_speedups), geomean(multiword_speedups),
        geomean(cone_speedups), labels, support_results[0],
        support_results[1]);
    const bool ok = words_match && keys_exact && !step_reductions.empty() &&
                    step_reduction_geomean >= 2.0;
    return ok ? 0 : 1;
}
