// E3 — Fig. 4: switching-delay distributions of the GSHE switch at
// IS = 20/60/100 uA from stochastic LLGS Monte Carlo. The paper runs
// 100 000 transients per current (GSHE_FIG4_RUNS=100000 reproduces that);
// the default uses 1500 for a seconds-scale run.
//
// Expected shape: spread and mean delay diminish with increasing IS, at the
// cost of higher power; switching is deterministic (every trial completes).
#include <cstdio>

#include "bench_util.hpp"
#include "common/ascii_table.hpp"
#include "core/characterization.hpp"

using namespace gshe;
using namespace gshe::core;

int main() {
    bench::banner("FIG. 4", "delay distributions vs spin current");
    const auto trials =
        static_cast<std::size_t>(env_long("GSHE_FIG4_RUNS", 1500));
    std::printf("transients per current: %zu (paper: 100000)\n", trials);

    const GsheSwitch device;
    AsciiTable summary("Summary (paper: mean 1.55 ns at IS = 20 uA)");
    summary.header({"IS", "switched", "mean", "std dev", "min", "max",
                    "read-out power"});

    for (const double is : {20e-6, 60e-6, 100e-6}) {
        const DelayDistribution d =
            characterize_delay(device, is, trials, /*seed=*/0xF164);
        summary.row({bench::eng(is, "A"),
                     std::to_string(d.switched) + "/" + std::to_string(d.trials),
                     bench::eng(d.stats.mean(), "s"),
                     bench::eng(d.stats.stddev(), "s"),
                     bench::eng(d.stats.min(), "s"),
                     bench::eng(d.stats.max(), "s"),
                     bench::eng(readout_point(device.params(), is).power, "W")});

        std::printf("\nIS = %s — fraction of occurrences per delay bin (0-6 ns):\n",
                    bench::eng(is, "A").c_str());
        // Render at the paper's axis: 0-6 ns, fraction-of-occurrences bars.
        Histogram display(0.0, 6e-9, 30);
        for (std::size_t b = 0; b < d.histogram.bins(); ++b)
            display.add(d.histogram.bin_center(b), d.histogram.count(b));
        std::puts(display.ascii(48).c_str());
    }
    std::puts(summary.render().c_str());
    std::puts("Note: our sLLGS macrospin lands the 20 uA mean at ~2.3 ns vs the");
    std::puts("paper's 1.55 ns (see EXPERIMENTS.md); the monotone shrinkage of");
    std::puts("mean and spread with IS — the property the primitive's delay-aware");
    std::puts("deployment relies on — reproduces cleanly.");
    return 0;
}
